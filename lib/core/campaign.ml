open Eof_hw
open Eof_os
module Rng = Eof_util.Rng
module Session = Eof_debug.Session
module Covlink = Eof_debug.Covlink
module Wire = Eof_agent.Wire
module Agent = Eof_agent.Agent
module Machine = Eof_agent.Machine
module Sancov = Eof_cov.Sancov
module Obs = Eof_obs.Obs
module Eof_error = Eof_util.Eof_error

(* How the campaign gets the target back to a known-good state.
   [Ladder]: the original escalation ladder only — no snapshot is ever
   armed, so the reflash rung rewrites every partition from the golden
   image. [Snapshot]: arm a pristine copy-on-write snapshot right after
   install; the ladder's reflash rung then restores O(dirty pages)
   instead of O(image). [Fresh_per_program]: additionally rewind to the
   pristine snapshot before {e every} payload, so no target-side state
   leaks between programs (host-side feedback and corpus persist — that
   is the point of the host keeping them). *)
type reset_policy = Ladder | Snapshot | Fresh_per_program

let reset_policy_name = function
  | Ladder -> "ladder"
  | Snapshot -> "snapshot"
  | Fresh_per_program -> "fresh-per-program"

let reset_policy_of_name s =
  match String.lowercase_ascii s with
  | "ladder" -> Ok Ladder
  | "snapshot" -> Ok Snapshot
  | "fresh-per-program" | "fresh" -> Ok Fresh_per_program
  | other ->
    Error
      (Printf.sprintf
         "unknown reset policy %S (expected ladder|snapshot|fresh-per-program)"
         other)

type config = {
  seed : int64;
  iterations : int;
  feedback : bool;
  dep_aware : bool;
  stall_watchdog : bool;
  stall_threshold : int;
  max_prog_len : int;
  mutation_bias : float;
  snapshot_every : int;
  api_filter : string list option;
  irq_injection : bool;
  initial_seeds : Prog.t list;
  reboot_every : int;
  batch_link : bool;
  fault_rate : float;
  fault_seed : int64;
  backend : Machine.backend;
  reset_policy : reset_policy;
  schedule : Corpus.schedule;
  gen_mode : Gen.mode;
}

let default_config =
  {
    seed = 1L;
    iterations = 400;
    feedback = true;
    dep_aware = true;
    stall_watchdog = true;
    stall_threshold = Liveness.default_stall_threshold;
    max_prog_len = 12;
    mutation_bias = 0.8;
    snapshot_every = 10;
    api_filter = None;
    irq_injection = false;
    initial_seeds = [];
    reboot_every = 150;
    batch_link = true;
    fault_rate = 0.;
    fault_seed = 0xFA0175EEDL;
    backend = Machine.Link;
    reset_policy = Ladder;
    schedule = Corpus.Uniform;
    gen_mode = Gen.Interp;
  }

type sample = { iteration : int; virtual_s : float; coverage : int }

type outcome = {
  os : string;
  coverage : int;
  series : sample list;
  crashes : Crash.t list;
  crash_events : int;
  executed_programs : int;
  resets : int;
  reflashes : int;
  stalls : int;
  timeouts : int;
  corpus_size : int;
  virtual_s : float;
  iterations_done : int;
  coverage_bitmap : Eof_util.Bitset.t;
  final_corpus : Prog.t list;
  abort_cause : Eof_error.t option;
}

(* How target-side evidence (coverage records, cmp ring, UART) reaches
   the host. [Per_request]: legacy unbatched link — one RSP exchange per
   read, performed at the loop's consumption points. [Batched]: fused
   link — every continue carries the full drain in one vBatch exchange
   and data parks in the pend_* accumulators. [Direct]: native backend —
   same fused drain-every-stop discipline, but by direct memory access
   with no link at all. Batched and Direct share the accumulator path
   bit-for-bit; that shared path is what makes the two backends
   digest-identical. *)
type drain_mode =
  | Per_request
  | Batched of Covlink.t
  | Direct

type state = {
  config : config;
  build : Osbuild.t;
  machine : Machine.t;
  mode : drain_mode;
  syms : Osbuild.syms;
  endianness : Arch.endianness;
  gen : Gen.t;
  rng : Rng.t;
  fb : Feedback.t;
  corpus : Corpus.t;
  target : Corpus.target;
      (* this campaign's personality x API-surface identity, the key its
         seeds' frontier entries live under *)
  mutable sched : (Prog.t * int) option;
      (* active energy grant: the scheduled seed and its remaining
         mutation budget before the next corpus draw (always [None]
         under the uniform schedule) *)
  crash_table : (string, Crash.t) Hashtbl.t;
  mutable crash_order : Crash.t list;  (* reverse discovery order *)
  mutable crash_events : int;
  mutable executed_programs : int;
  mutable resets : int;
  mutable reflashes : int;
  mutable stalls : int;
  mutable timeouts : int;
  mutable iteration : int;
  mutable series : sample list;
  mutable current_prog : Prog.t;
  mutable focus : (Prog.t * int) option;
      (* AFL-style focused phase: after a new-coverage find, mutate that
         program for a burst before returning to corpus sampling *)
  mutable last_cmp_pairs : (int64 * int64) list;
      (* operand pairs recorded during the most recent execution *)
  mutable pending : Prog.t list;
      (* deterministic input-to-state children queued to run next *)
  pending_hashes : (int, unit) Hashtbl.t;
  mutable last_was_child : bool;
      (* the program that just ran was an input-to-state child: such
         programs must not spawn further children (the patch cascade
         otherwise monopolizes the budget) *)
  mutable fresh_yield : float;
      (* EWMA of "a freshly generated program found new coverage":
         drives the explore/exploit split (explore while it pays) *)
  mutable last_was_fresh : bool;
  liveness : Liveness.t;
  mutable pend_rec : int array;  (* drained, uncommitted edge records *)
  mutable pend_rec_len : int;
  mutable pend_cmp_a : int64 array;  (* drained, uncommitted operand pairs *)
  mutable pend_cmp_b : int64 array;
  mutable pend_cmp_len : int;
  pend_log : Buffer.t;  (* drained, unconsumed UART output *)
  mutable pend_write : (int * string) option;
      (* a staged mailbox image, delivered as a write op inside the next
         fused vBatch instead of its own exchange *)
  img_buf : Buffer.t;
      (* reused wire-encode + mailbox-image scratch, pre-sized once so
         the per-payload path allocates only the final image string *)
  mutable current_ops : string array;
      (* call names of current_prog, indexed once at selection so the
         per-crash progress lookup is O(1) instead of O(n^2) List.nth *)
  mutable consecutive_failures : int;
      (* unrecoverable link failures in a row; 5 aborts the campaign *)
  mutable aborted : bool;
      (* an exception escaped an iteration: stop, keep what we have *)
  mutable rung : int;
      (* current height on the recovery escalation ladder; 0 = healthy,
         reset by any clean stop, climbed by each link failure *)
  mutable dead : bool;
      (* the ladder was exhausted: this board is gone for good *)
  mutable abort_cause : Eof_error.t option;
  obs : Obs.t;
  c_payloads : Obs.Counter.t;
  c_crash_events : Obs.Counter.t;
  c_corpus_admits : Obs.Counter.t;
  c_sched_grants : Obs.Counter.t;
  c_resyncs : Obs.Counter.t;
  c_rung_resets : Obs.Counter.t;
  c_rung_reflashes : Obs.Counter.t;
  c_dead : Obs.Counter.t;
}

(* --- small helpers ---------------------------------------------------- *)

(* Fused modes (Batched link, Direct native): park one stop's drained
   data in the pending accumulators. Committing happens separately, at
   exactly the loop points where the unbatched path performs its reads.
   Because every fused drain resets the target-side counters, the
   pending data is always exactly what the unbatched host would still
   find in target RAM — so a board reset, which clears RAM and the UART
   FIFO, must discard the pending accumulators too (see {!reboot}).
   Decoding goes straight into the reusable scratch arrays: nothing
   proportional to the record count is allocated on this path. *)
let absorb_drained st (d : Machine.drained) =
  if d.Machine.n_records > 0 then begin
    let need = st.pend_rec_len + d.Machine.n_records in
    if Array.length st.pend_rec < need then begin
      let grown = Array.make (max need (2 * Array.length st.pend_rec)) 0 in
      Array.blit st.pend_rec 0 grown 0 st.pend_rec_len;
      st.pend_rec <- grown
    end;
    st.pend_rec_len <-
      st.pend_rec_len
      + Sancov.decode_records_into ~pos:st.pend_rec_len ~endianness:st.endianness
          ~count:d.Machine.n_records d.Machine.records_raw st.pend_rec
  end;
  if d.Machine.n_cmp > 0 then begin
    let need = st.pend_cmp_len + d.Machine.n_cmp in
    if Array.length st.pend_cmp_a < need then begin
      let grow a =
        let g = Array.make (max need (2 * Array.length a)) 0L in
        Array.blit a 0 g 0 st.pend_cmp_len;
        g
      in
      st.pend_cmp_a <- grow st.pend_cmp_a;
      st.pend_cmp_b <- grow st.pend_cmp_b
    end;
    st.pend_cmp_len <-
      st.pend_cmp_len
      + Sancov.decode_cmp_ring_into ~pos:st.pend_cmp_len ~endianness:st.endianness
          ~count:d.Machine.n_cmp d.Machine.cmp_raw ~a:st.pend_cmp_a ~b:st.pend_cmp_b
  end;
  if d.Machine.log <> "" then Buffer.add_string st.pend_log d.Machine.log

(* The link's fused drain and the native one return the same shape under
   different record types; bridge the Covlink one over. *)
let drained_of_covlink (d : Covlink.drained) : Machine.drained =
  {
    Machine.n_records = d.Covlink.n_records;
    records_raw = d.Covlink.records_raw;
    n_cmp = d.Covlink.n_cmp;
    cmp_raw = d.Covlink.cmp_raw;
    log = d.Covlink.log;
  }

(* UART output as the unbatched path would see it at this point: either
   drained now over the link, or accumulated stop-by-stop since the last
   consumption point. *)
let take_log st =
  match st.mode with
  | Per_request ->
    (match Machine.drain_uart st.machine with Ok s -> s | Error _ -> "")
  | Batched _ | Direct ->
    let log = Buffer.contents st.pend_log in
    Buffer.clear st.pend_log;
    log

let drain_cmp_hints st =
  (* Only feedback-guided campaigns read the ring, and only they learn
     from it — EOF-nf ignores feedback by definition. *)
  if st.config.feedback then begin
    match st.mode with
    | Batched _ | Direct ->
      if st.pend_cmp_len > 0 then begin
        let pairs =
          List.init st.pend_cmp_len (fun i -> (st.pend_cmp_a.(i), st.pend_cmp_b.(i)))
        in
        st.pend_cmp_len <- 0;
        st.last_cmp_pairs <- pairs;
        List.iter
          (fun (a, b) ->
            Gen.add_int_hint st.gen a;
            Gen.add_int_hint st.gen b)
          pairs
      end
    | Per_request ->
      let layout = Osbuild.covbuf_layout st.build in
      (match Machine.read_u32 st.machine ~addr:(Sancov.Layout.cmp_count_addr layout) with
       | Error _ -> ()
       | Ok count ->
         let count = min (Int32.to_int count) Sancov.Layout.cmp_ring_entries in
         if count > 0 then begin
           match
             Machine.read_mem st.machine
               ~addr:(Sancov.Layout.cmp_ring_addr layout)
               ~len:(8 * count)
           with
           | Error _ -> ()
           | Ok raw ->
             ignore
               (Machine.write_u32 st.machine ~addr:(Sancov.Layout.cmp_count_addr layout) 0l
                 : (unit, Eof_error.t) result);
             let pairs =
               List.map
                 (fun (a, b) -> (Int64.of_int32 a, Int64.of_int32 b))
                 (Sancov.decode_cmp_ring ~endianness:st.endianness ~count raw)
             in
             st.last_cmp_pairs <- pairs;
             List.iter
               (fun (a, b) ->
                 Gen.add_int_hint st.gen a;
                 Gen.add_int_hint st.gen b)
               pairs
         end)
  end

let drain_coverage st =
  match st.mode with
  | Batched _ | Direct ->
    let merged = Feedback.merge_array st.fb st.pend_rec ~len:st.pend_rec_len in
    st.pend_rec_len <- 0;
    merged
  | Per_request ->
    let layout = Osbuild.covbuf_layout st.build in
    (match Machine.read_u32 st.machine ~addr:(Sancov.Layout.write_index_addr layout) with
     | Error _ -> 0
     | Ok widx ->
       let widx = min (Int32.to_int widx) layout.Sancov.Layout.capacity_records in
       if widx <= 0 then 0
       else begin
         match
           Machine.read_mem st.machine
             ~addr:(Sancov.Layout.records_addr layout)
             ~len:(4 * widx)
         with
         | Error _ -> 0
         | Ok raw ->
           ignore
             (Machine.write_u32 st.machine ~addr:(Sancov.Layout.write_index_addr layout) 0l
               : (unit, Eof_error.t) result);
           let edges = Sancov.decode_records ~endianness:st.endianness ~count:widx raw in
           Feedback.merge st.fb edges
       end)

let operation_of_progress st =
  match Machine.read_u32 st.machine ~addr:(Agent.progress_addr st.build) with
  | Error _ -> None
  | Ok v ->
    let idx = Int32.to_int v in
    if idx < 0 || idx >= Array.length st.current_ops then None
    else Some st.current_ops.(idx)

let scope_of_backtrace = function
  | frame :: _ ->
    (* "path/file.c : function : line" -> the file's stem *)
    (match String.split_on_char ':' frame with
     | path :: _ ->
       let path = String.trim path in
       let base = Filename.basename path in
       (try Filename.chop_extension base with Invalid_argument _ -> base)
     | [] -> "kernel")
  | [] -> "kernel"

let record_crash st ~kind ~operation ~scope ~message ~backtrace ~monitor =
  st.crash_events <- st.crash_events + 1;
  Obs.Counter.incr st.c_crash_events;
  let crash =
    {
      Crash.os = Osbuild.os_name st.build;
      kind;
      operation;
      scope;
      message;
      backtrace;
      detected_by = monitor;
      program = Prog.to_string st.current_prog;
      iteration = st.iteration;
    }
  in
  let key = Crash.dedup_key crash in
  if not (Hashtbl.mem st.crash_table key) then begin
    Hashtbl.replace st.crash_table key crash;
    st.crash_order <- crash :: st.crash_order;
    if Obs.active st.obs then
      Obs.emit st.obs
        (Obs.Event.Crash_found { kind = Crash.kind_name kind; operation })
  end

(* Scan a log chunk for monitor-detectable events (assertions in
   particular survive without any hardware fault). *)
let scan_log_for_crashes st log =
  let detections = Monitor.scan log in
  (match Monitor.first_assertion detections with
   | Some (_, message) ->
     let operation =
       match Monitor.assert_operation message with
       | Some op -> op
       | None -> Option.value ~default:"unknown" (operation_of_progress st)
     in
     record_crash st ~kind:Crash.Kernel_assertion ~operation ~scope:"kernel" ~message
       ~backtrace:[] ~monitor:Crash.Log_monitor
   | None -> ());
  detections

(* Deterministic Redqueen step: if the program that just ran compared one
   of its own arguments against a different constant, queue the patched
   program to run next. *)
let queue_i2s_children st =
  if st.config.feedback && st.current_prog <> [] && not st.last_was_child then
    List.iter
      (fun child ->
        if List.length st.pending < 32 then begin
          let h = Prog.hash child in
          if not (Hashtbl.mem st.pending_hashes h) then begin
            Hashtbl.replace st.pending_hashes h ();
            st.pending <- child :: st.pending
          end
        end)
      (Gen.substitute_all st.gen st.current_prog ~pairs:st.last_cmp_pairs)


(* --- liveness & recovery --------------------------------------------- *)

(* A board reset clears RAM (coverage buffer, cmp ring) and the UART
   FIFO: whatever the unbatched host had not yet read is destroyed. The
   batched host holds that same not-yet-committed data in its pending
   accumulators, so a reset must destroy those too — otherwise batching
   would smuggle pre-crash records past the reboot and the two modes
   would diverge. *)
let discard_pending st =
  st.pend_rec_len <- 0;
  st.pend_cmp_len <- 0;
  st.pend_write <- None;
  Buffer.clear st.pend_log

let reflash st =
  match Liveness.restore st.machine ~build:st.build with
  | Ok _ ->
    st.reflashes <- st.reflashes + 1;
    st.resets <- st.resets + 1;
    discard_pending st;
    Ok ()
  | Error e -> Error e

let reboot st =
  match Liveness.reboot_only st.machine with
  | Ok () ->
    st.resets <- st.resets + 1;
    discard_pending st;
    Ok ()
  | Error e -> Error e

(* The escalation ladder, climbing one rung per link failure that the
   session's own in-exchange retry (rung "retry") could not cure:
   resynchronize the session, then reset the board, then reflash every
   partition, then give the board up for dead. A recovery action that
   itself fails climbs immediately; any cleanly decoded stop drops back
   to the bottom (see {!classify_stop}). *)
let rec recover st (cause : Eof_error.t) =
  st.rung <- st.rung + 1;
  let attempt = st.rung in
  let observe rung =
    if Obs.active st.obs then
      Obs.emit st.obs (Obs.Event.Recovery { rung; attempt })
  in
  match st.rung with
  | 1 ->
    Obs.Counter.incr st.c_resyncs;
    observe "resync";
    (match Machine.resync st.machine with
     | Ok () -> Ok ()
     | Error e -> recover st e)
  | 2 ->
    Obs.Counter.incr st.c_rung_resets;
    observe "reset";
    (match reboot st with Ok () -> Ok () | Error e -> recover st e)
  | 3 ->
    Obs.Counter.incr st.c_rung_reflashes;
    observe "reflash";
    (match reflash st with Ok () -> Ok () | Error e -> recover st e)
  | _ ->
    Obs.Counter.incr st.c_dead;
    observe "dead";
    st.dead <- true;
    let e =
      Eof_error.with_context (Eof_error.to_string cause)
        (Eof_error.board_dead "reflash")
    in
    st.abort_cause <- Some e;
    Error e

(* One continue plus full interpretation of the stop. *)
type event =
  | Ev_ready
  | Ev_done
  | Ev_buf_full
  | Ev_panic_bp
  | Ev_fault
  | Ev_quantum of int
  | Ev_other_bp
  | Ev_exited
  | Ev_link_failed of Eof_error.t

let classify_stop st stop =
  (* Any cleanly decoded stop proves the link healthy: drop back to the
     bottom of the escalation ladder. *)
  st.rung <- 0;
  match stop with
  | Machine.Stopped_breakpoint pc ->
    Liveness.reset st.liveness;
    if pc = st.syms.Osbuild.sym_executor_main then Ev_ready
    else if pc = st.syms.Osbuild.sym_loop_back then Ev_done
    else if pc = st.syms.Osbuild.sym_buf_full then Ev_buf_full
    else if pc = st.syms.Osbuild.sym_handle_exception then Ev_panic_bp
    else Ev_other_bp
  | Machine.Stopped_fault _ -> Ev_fault
  | Machine.Stopped_quantum pc -> Ev_quantum pc
  | Machine.Target_exited -> Ev_exited

let advance st =
  match st.mode with
  | Per_request ->
    (match Machine.continue_ st.machine with
     | Error e -> Ev_link_failed e
     | Ok stop -> classify_stop st stop)
  | Batched cl ->
    (* The hot-path fusion: the continue, the whole coverage drain and
       any staged mailbox delivery are one vBatch exchange, so each stop
       costs one link round trip instead of six-plus. *)
    let write = st.pend_write in
    st.pend_write <- None;
    (match Covlink.continue_and_drain ?write cl ~want_cmp:st.config.feedback with
     | Error e -> Ev_link_failed e
     | Ok (stop, d) ->
       absorb_drained st (drained_of_covlink d);
       classify_stop st stop)
  | Direct ->
    (* The same fusion with the link removed entirely: mailbox delivery,
       continue and full drain are direct calls into board memory. *)
    let write = st.pend_write in
    st.pend_write <- None;
    (match Machine.continue_and_drain ?write st.machine ~want_cmp:st.config.feedback with
     | Error e -> Ev_link_failed e
     | Ok (stop, d) ->
       absorb_drained st d;
       classify_stop st stop)

(* A continue whose stop is deliberately ignored (letting a fault
   unwind). The fused paths still drain, so nothing the unbatched
   path would later find in RAM is lost. *)
let blind_continue st =
  match st.mode with
  | Per_request ->
    ignore (Machine.continue_ st.machine : (Machine.stop, Eof_error.t) result)
  | Batched cl ->
    (match Covlink.continue_and_drain cl ~want_cmp:st.config.feedback with
     | Ok (_, d) -> absorb_drained st (drained_of_covlink d)
     | Error _ -> ())
  | Direct ->
    (match Machine.continue_and_drain st.machine ~want_cmp:st.config.feedback with
     | Ok (_, d) -> absorb_drained st d
     | Error _ -> ())

let handle_panic_bp st =
  let log = take_log st in
  let detections = scan_log_for_crashes st log in
  let backtrace = Monitor.collect_backtrace detections in
  let message =
    match Monitor.first_panic detections with
    | Some (_, m) -> m
    | None -> (match Machine.last_fault st.machine with Ok f when f <> "" -> f | _ -> "panic")
  in
  let operation =
    match operation_of_progress st with Some op -> op | None -> "boot"
  in
  record_crash st ~kind:Crash.Kernel_panic ~operation
    ~scope:(scope_of_backtrace backtrace) ~message ~backtrace
    ~monitor:Crash.Exception_monitor;
  (* Let the fault unwind (ignore its stop), then reboot. *)
  blind_continue st;
  reboot st

let handle_fault st =
  (* A hardware fault that did not pass through an instrumented panic
     handler: classify from the fault register and any log output. *)
  let log = take_log st in
  ignore (scan_log_for_crashes st log : Monitor.detection list);
  let message =
    match Machine.last_fault st.machine with Ok f when f <> "" -> f | _ -> "hardware fault"
  in
  let operation =
    match operation_of_progress st with Some op -> op | None -> "boot"
  in
  record_crash st ~kind:Crash.Kernel_panic ~operation ~scope:"kernel" ~message ~backtrace:[]
    ~monitor:Crash.Exception_monitor;
  reboot st

let handle_stall st pc =
  st.stalls <- st.stalls + 1;
  let log = take_log st in
  let detections = Monitor.scan log in
  (match Monitor.first_assertion detections with
   | Some (_, message) ->
     (* A hang preceded by an assertion report: the log monitor names
        the bug, the watchdog merely unwedged the board. *)
     let operation =
       match Monitor.assert_operation message with
       | Some op -> op
       | None -> Option.value ~default:"unknown" (operation_of_progress st)
     in
     record_crash st ~kind:Crash.Kernel_assertion ~operation ~scope:"kernel" ~message
       ~backtrace:[] ~monitor:Crash.Log_monitor
   | None ->
     let operation =
       match operation_of_progress st with Some op -> op | None -> "unknown"
     in
     record_crash st ~kind:Crash.Hang ~operation ~scope:"kernel"
       ~message:(Printf.sprintf "execution stalled at 0x%08x" pc)
       ~backtrace:[] ~monitor:Crash.Liveness_watchdog);
  reboot st

(* Drive until the agent waits at executor_main. *)
let rec goto_ready st ~budget =
  if budget <= 0 then Error (Eof_error.agent "target failed to reach executor_main")
  else
    match advance st with
    | Ev_ready -> Ok ()
    | Ev_done ->
      ignore (drain_coverage st : int);
      ignore (scan_log_for_crashes st (take_log st) : Monitor.detection list);
      goto_ready st ~budget:(budget - 1)
    | Ev_buf_full ->
      ignore (drain_coverage st : int);
      goto_ready st ~budget:(budget - 1)
    | Ev_other_bp -> goto_ready st ~budget:(budget - 1)
    | Ev_panic_bp ->
      (match handle_panic_bp st with
       | Ok () -> goto_ready st ~budget:(budget - 1)
       | Error e -> Error e)
    | Ev_fault ->
      (match handle_fault st with
       | Ok () -> goto_ready st ~budget:(budget - 1)
       | Error e -> Error e)
    | Ev_exited ->
      (match reboot st with
       | Ok () -> goto_ready st ~budget:(budget - 1)
       | Error e -> Error e)
    | Ev_quantum pc ->
      if pc = st.syms.Osbuild.sym_boot then begin
        (* Stuck at the boot vector: the image is damaged; reflash. *)
        ignore (scan_log_for_crashes st (take_log st) : Monitor.detection list);
        record_crash st ~kind:Crash.Boot_failure ~operation:"boot" ~scope:"bootloader"
          ~message:"image integrity check failed at boot" ~backtrace:[]
          ~monitor:Crash.Liveness_watchdog;
        match reflash st with
        | Ok () -> goto_ready st ~budget:(budget - 1)
        | Error e -> Error e
      end
      else if not st.config.stall_watchdog then
        (* Ablation A1: no stall watchdog; burn budget continuing. *)
        goto_ready st ~budget:(budget - 1)
      else begin
        match Liveness.check st.liveness st.machine with
        | Liveness.Pc_stalled pc ->
          Liveness.reset st.liveness;
          (match handle_stall st pc with
           | Ok () -> goto_ready st ~budget:(budget - 1)
           | Error e -> Error e)
        | Liveness.Connection_lost ->
          st.timeouts <- st.timeouts + 1;
          (match
             recover st (Eof_error.with_context "liveness connection-lost" Eof_error.timeout)
           with
           | Ok () -> goto_ready st ~budget:(budget - 1)
           | Error e -> Error e)
        | Liveness.Alive | Liveness.First_observation ->
          goto_ready st ~budget:(budget - 1)
      end
    | Ev_link_failed cause ->
      st.timeouts <- st.timeouts + 1;
      (match recover st cause with
       | Ok () -> goto_ready st ~budget:(budget - 1)
       | Error e -> Error e)

let write_program st prog =
  let wire = Prog.to_wire prog in
  (* Encode into the reused scratch buffer; the only per-payload
     allocation left is the exact-size image string itself (it must be
     a string: staged writes and RSP packets both keep it). *)
  Buffer.clear st.img_buf;
  match Wire.encode_into ~endianness:st.endianness st.img_buf wire with
  | Error e -> Error (Eof_error.agent e)
  | Ok () ->
    let plen = Buffer.length st.img_buf in
    if plen + 8 > Agent.max_program_bytes st.build then
      Error (Eof_error.agent "program exceeds mailbox")
    else begin
      let image = Bytes.create (8 + plen) in
      (match st.endianness with
       | Arch.Little ->
         Bytes.set_int32_le image 0 Wire.magic;
         Bytes.set_int32_le image 4 (Int32.of_int plen)
       | Arch.Big ->
         Bytes.set_int32_be image 0 Wire.magic;
         Bytes.set_int32_be image 4 (Int32.of_int plen));
      Buffer.blit st.img_buf 0 image 8 plen;
      let image = Bytes.unsafe_to_string image in
      let addr = Osbuild.mailbox_base st.build in
      (* Fused modes stage the image: it is delivered inside the next
         fused continue (a binary write op in the vBatch, or a direct
         memory write), costing zero extra exchanges. The unbatched
         baseline keeps the hex M packet so its per-request cost model
         stays what it was. *)
      match st.mode with
      | Batched _ | Direct ->
        st.pend_write <- Some (addr, image);
        Ok ()
      | Per_request ->
        (match Machine.write_mem st.machine ~addr image with
         | Ok () -> Ok ()
         | Error e -> Error (Eof_error.with_context "program delivery" e))
    end

(* Execute the delivered program until loop_back (or a crash resolves). *)
let rec run_program st ~budget ~crashed =
  if budget <= 0 then Ok (`Aborted, crashed)
  else
    match advance st with
    | Ev_done ->
      ignore (drain_coverage st : int);
      drain_cmp_hints st;
      ignore (scan_log_for_crashes st (take_log st) : Monitor.detection list);
      Ok (`Completed, crashed)
    | Ev_buf_full ->
      ignore (drain_coverage st : int);
      run_program st ~budget:(budget - 1) ~crashed
    | Ev_other_bp -> run_program st ~budget:(budget - 1) ~crashed
    | Ev_ready ->
      (* Came back around without hitting loop_back: the mailbox held
         garbage (undecodable program) — treat as completed-empty. *)
      Ok (`Rejected, crashed)
    | Ev_panic_bp ->
      (match handle_panic_bp st with
       | Ok () -> Ok (`Crashed, true)
       | Error e -> Error e)
    | Ev_fault ->
      (match handle_fault st with
       | Ok () -> Ok (`Crashed, true)
       | Error e -> Error e)
    | Ev_exited ->
      (match reboot st with Ok () -> Ok (`Aborted, crashed) | Error e -> Error e)
    | Ev_quantum pc ->
      if not st.config.stall_watchdog then run_program st ~budget:(budget - 1) ~crashed
      else begin
        match Liveness.check st.liveness st.machine with
        | Liveness.Pc_stalled pc' ->
          Liveness.reset st.liveness;
          (match handle_stall st pc' with
           | Ok () -> Ok (`Crashed, true)
           | Error e -> Error e)
        | Liveness.Connection_lost ->
          st.timeouts <- st.timeouts + 1;
          (match
             recover st (Eof_error.with_context "liveness connection-lost" Eof_error.timeout)
           with
           | Ok () -> Ok (`Aborted, crashed)
           | Error e -> Error e)
        | Liveness.Alive | Liveness.First_observation ->
          ignore pc;
          run_program st ~budget:(budget - 1) ~crashed
      end
    | Ev_link_failed cause ->
      st.timeouts <- st.timeouts + 1;
      (match recover st cause with
       | Ok () -> Ok (`Aborted, crashed)
       | Error e -> Error e)

let mutate_seed st seed =
  (* Mutation may grow seeds past the fresh-generation cap: corpus
     programs accumulate kernel context the generator cannot guess. *)
  Gen.mutate st.gen seed ~max_len:(2 * st.config.max_prog_len)

let choose_program st =
  if not st.config.feedback then Gen.generate st.gen ~max_len:st.config.max_prog_len
  else
    match st.pending with
    | child :: rest ->
      st.pending <- rest;
      st.last_was_fresh <- false;
      st.last_was_child <- true;
      child
    | [] ->
      st.last_was_child <- false;
    match st.focus with
    | Some (prog, remaining) when remaining > 0 ->
      st.focus <- Some (prog, remaining - 1);
      st.last_was_fresh <- false;
      (* Half the focused budget goes to input-to-state substitution
         (Redqueen-style), half to havoc mutation. Substitution applies
         to the most recently executed program — the one the recorded
         comparison operands belong to — so a discarded mutant whose new
         call compared against an unmet constant still gets patched. *)
      if Rng.chance st.rng 0.5 && st.current_prog <> [] then
        match Gen.substitute st.gen st.current_prog ~pairs:st.last_cmp_pairs with
        | Some prog' -> prog'
        | None -> Gen.mutate_focus st.gen prog ~max_len:(2 * st.config.max_prog_len)
      else Gen.mutate_focus st.gen prog ~max_len:(2 * st.config.max_prog_len)
    | _ ->
      st.focus <- None;
      (* The explore/exploit split follows the observed yield of fresh
         generation: explore while random programs still find edges,
         shift budget to corpus mutation as they stop (mutation_bias is
         the ceiling the split approaches). This self-scales to any
         iteration budget, unlike a wall-clock ramp. *)
      let bias = st.config.mutation_bias *. (1. -. st.fresh_yield) in
      st.last_was_fresh <- false;
      if (not (Corpus.is_empty st.corpus)) && Rng.chance st.rng bias then begin
        (* An active energy grant spends its remaining budget on the
           same seed before the next corpus draw (always [None] under
           the uniform schedule, where every draw earns energy 1 and
           this path is RNG-identical to the original single pick). *)
        match st.sched with
        | Some (seed, remaining) when remaining > 0 ->
          st.sched <- Some (seed, remaining - 1);
          mutate_seed st seed
        | _ ->
          st.sched <- None;
          (match Corpus.next st.corpus ~target:st.target with
           | Some (seed, energy) ->
             if energy > 1 then begin
               st.sched <- Some (seed, energy - 1);
               Obs.Counter.incr st.c_sched_grants;
               if Obs.active st.obs then
                 Obs.emit st.obs
                   (Obs.Event.Seed_scheduled
                      {
                        energy;
                        frontier =
                          Corpus.on_frontier st.corpus ~target:st.target seed;
                      })
             end;
             mutate_seed st seed
           | None ->
             st.last_was_fresh <- true;
             Gen.generate st.gen ~max_len:st.config.max_prog_len)
      end
      else begin
        st.last_was_fresh <- true;
        Gen.generate st.gen ~max_len:st.config.max_prog_len
      end

let sample st =
  st.series <-
    {
      iteration = st.iteration;
      virtual_s = Machine.virtual_elapsed_s st.machine;
      coverage = Feedback.covered st.fb;
    }
    :: st.series

let outcome_of_state st =
  {
    os = Osbuild.os_name st.build;
    coverage = Feedback.covered st.fb;
    series = List.rev st.series;
    crashes = List.rev st.crash_order;
    crash_events = st.crash_events;
    executed_programs = st.executed_programs;
    resets = st.resets;
    reflashes = st.reflashes;
    stalls = st.stalls;
    timeouts = st.timeouts;
    corpus_size = Corpus.size st.corpus;
    virtual_s = Machine.virtual_elapsed_s st.machine;
    iterations_done = st.iteration;
    coverage_bitmap = Feedback.snapshot st.fb;
    final_corpus = Corpus.progs st.corpus;
    abort_cause = st.abort_cause;
  }

(* Restrict a validated spec to an allowlist, dropping resources that
   lose their producers. *)
let filter_spec (spec : Eof_spec.Ast.t) allow =
  let calls = List.filter (fun (c : Eof_spec.Ast.call) -> List.mem c.Eof_spec.Ast.name allow) spec.Eof_spec.Ast.calls in
  let produced =
    List.filter_map (fun (c : Eof_spec.Ast.call) -> c.Eof_spec.Ast.ret) calls
    |> List.sort_uniq compare
  in
  let calls =
    List.filter
      (fun (c : Eof_spec.Ast.call) ->
        List.for_all
          (fun (_, ty) ->
            match ty with Eof_spec.Ast.Ty_res k -> List.mem k produced | _ -> true)
          c.Eof_spec.Ast.args)
      calls
  in
  { spec with Eof_spec.Ast.calls; resources = produced }

let init ?machine ?obs config build =
  let table = Osbuild.api_signatures build in
  match Eof_spec.Synth.validated_of_api table with
  | Error e -> Error (Eof_error.config e)
  | Ok spec ->
    let spec =
      match config.api_filter with None -> spec | Some allow -> filter_spec spec allow
    in
    let machine_result =
      match machine with
      | Some m -> Ok m
      | None ->
        (match config.backend with
         | Machine.Native -> Machine.create_native ?obs build
         | Machine.Link ->
           let inject =
             if config.fault_rate > 0. then
               Some
                 {
                   Eof_debug.Inject.default_config with
                   Eof_debug.Inject.rate = config.fault_rate;
                   seed = config.fault_seed;
                 }
             else None
           in
           Machine.create ?obs ?inject build)
    in
    (match machine_result with
     | Error e -> Error e
     | Ok machine when
         Machine.backend machine = Machine.Native && config.fault_rate > 0. ->
       (* Checked against the resolved machine, not config.backend, so a
          farm-supplied native machine is rejected identically. *)
       Error
         (Eof_error.config
            "fault injection is link-only: the native backend has no link to fault")
     | Ok machine ->
       (* The campaign may hold a different handle of the same bus than
          the machine does (the farm derives one per board); bind this
          one's clock to the same virtual time source. *)
       (match obs with
        | Some bus -> Obs.set_clock bus (fun () -> Machine.virtual_elapsed_s machine)
        | None -> ());
       let obs = match obs with Some o -> o | None -> Machine.obs machine in
       let rng = Rng.create config.seed in
       let gen =
         Gen.create ~dep_aware:config.dep_aware ~mode:config.gen_mode
           ~rng:(Rng.split rng) ~spec ~table ()
       in
       (* The scheduling target is the fuzzed API surface, not the full
          table: an api_filter'd campaign is a different target, so its
          frontier does not pollute the unfiltered one's. *)
       let target =
         let table_for_target =
           match config.api_filter with
           | None -> table
           | Some _ ->
             {
               table with
               Eof_rtos.Api.entries =
                 List.filter
                   (fun (e : Eof_rtos.Api.entry) ->
                     List.exists
                       (fun (c : Eof_spec.Ast.call) ->
                         String.equal c.Eof_spec.Ast.name e.Eof_rtos.Api.name)
                       spec.Eof_spec.Ast.calls)
                   table.Eof_rtos.Api.entries;
             }
         in
         Corpus.target_of ~os:(Osbuild.os_name build) ~table:table_for_target
       in
       let mode =
         match Machine.backend machine with
         | Machine.Native -> Direct
         | Machine.Link ->
           if config.batch_link && Machine.supports_batch machine then
             Batched
               (Covlink.create ~session:(Machine.session machine)
                  ~layout:(Osbuild.covbuf_layout build))
           else Per_request
       in
       let st =
         {
           config;
           build;
           machine;
           mode;
           syms = Osbuild.syms build;
           endianness = (Board.profile (Osbuild.board build)).Board.arch.Arch.endianness;
           gen;
           rng;
           fb = Feedback.create ~edge_capacity:(Osbuild.edge_capacity build);
           corpus =
             Corpus.create ~rng:(Rng.split rng) ~schedule:config.schedule ~target ();
           target;
           sched = None;
           crash_table = Hashtbl.create 32;
           crash_order = [];
           crash_events = 0;
           executed_programs = 0;
           resets = 0;
           reflashes = 0;
           stalls = 0;
           timeouts = 0;
           iteration = 0;
           series = [];
           current_prog = [];
           focus = None;
           last_cmp_pairs = [];
           pending = [];
           pending_hashes = Hashtbl.create 256;
           last_was_child = false;
           fresh_yield = 1.0;
           last_was_fresh = false;
           liveness = Liveness.create ~obs ~stall_threshold:config.stall_threshold ();
           pend_rec = Array.make 256 0;
           pend_rec_len = 0;
           pend_cmp_a = Array.make 64 0L;
           pend_cmp_b = Array.make 64 0L;
           pend_cmp_len = 0;
           pend_log = Buffer.create 256;
           pend_write = None;
           img_buf = Buffer.create 1024;
           current_ops = [||];
           consecutive_failures = 0;
           aborted = false;
           rung = 0;
           dead = false;
           abort_cause = None;
           obs;
           c_payloads = Obs.Counter.make obs "campaign.payloads";
           c_crash_events = Obs.Counter.make obs "campaign.crash_events";
           c_corpus_admits = Obs.Counter.make obs "campaign.corpus_admits";
           c_sched_grants = Obs.Counter.make obs "campaign.sched_grants";
           c_resyncs = Obs.Counter.make obs "recover.resync";
           c_rung_resets = Obs.Counter.make obs "recover.reset";
           c_rung_reflashes = Obs.Counter.make obs "recover.reflash";
           c_dead = Obs.Counter.make obs "recover.dead";
         }
       in
       let arm addr =
         match Machine.set_breakpoint machine addr with
         | Ok () -> Ok ()
         | Error e -> Error (Eof_error.with_context "arm breakpoint" e)
       in
       let ( let* ) = Result.bind in
       let* () = arm st.syms.Osbuild.sym_executor_main in
       let* () = arm st.syms.Osbuild.sym_loop_back in
       let* () = arm st.syms.Osbuild.sym_buf_full in
       let* () = arm st.syms.Osbuild.sym_handle_exception in
       (* Snapshot policies capture the pristine state now — after
          install and breakpoint arming, before the target ever runs —
          so every later restore (ladder rung 3, or each payload under
          fresh-per-program) rewinds to exactly this point. *)
       let* () =
         match config.reset_policy with
         | Ladder -> Ok ()
         | Snapshot | Fresh_per_program ->
           Result.map_error
             (Eof_error.with_context "arm pristine snapshot")
             (Result.map ignore (Machine.snapshot_save machine))
       in
       (* Replay loaded seeds so they re-enter the corpus with their
          coverage credited. *)
       List.iter
         (fun prog ->
           if Prog.validate prog = Ok () then
             ignore (Corpus.add st.corpus ~prog ~new_edges:1 ~crashed:false : bool))
         config.initial_seeds;
       Ok st)

(* An unrecoverable iteration failure: five in a row abort the campaign,
   and the cause of the fifth is kept as the abort cause (a dead board
   already recorded its own richer cause). *)
let note_failure st e =
  st.consecutive_failures <- st.consecutive_failures + 1;
  if st.consecutive_failures >= 5 && st.abort_cause = None then
    st.abort_cause <- Some (Eof_error.with_context "5 consecutive failed iterations" e)

let finished st =
  st.aborted || st.dead
  || st.iteration >= st.config.iterations
  || st.consecutive_failures >= 5

let step st =
  if not (finished st) then begin
    let config = st.config in
    try
      st.iteration <- st.iteration + 1;
      (match config.reset_policy with
       | Fresh_per_program ->
         (* Every payload starts from the pristine snapshot: rewind the
            dirty pages, then reboot (which also discards the host's
            pending accumulators, exactly as a ladder reboot does). A
            failed restore is a failed iteration, not a crash — the
            ladder still guards actual link trouble. *)
         (match Machine.snapshot_restore st.machine with
          | Ok (_dirty : int) ->
            ignore (reboot st : (unit, Eof_error.t) result)
          | Error e ->
            note_failure st (Eof_error.with_context "fresh-per-program restore" e))
       | Ladder | Snapshot ->
         if config.reboot_every > 0 && st.iteration mod config.reboot_every = 0
         then ignore (reboot st : (unit, Eof_error.t) result));
      (match goto_ready st ~budget:50 with
       | Error e -> note_failure st e
       | Ok () ->
         let before = Feedback.covered st.fb in
         let distinct_before = Hashtbl.length st.crash_table in
         let prog = choose_program st in
         st.current_prog <- prog;
         st.current_ops <-
           Array.of_list
             (List.map (fun c -> c.Prog.spec.Eof_spec.Ast.name) prog);
         if config.irq_injection && Rng.chance st.rng 0.4 then begin
           let pin = Rng.int st.rng 16 in
           ignore
             (Machine.inject_gpio st.machine ~pin ~level:(Rng.bool st.rng)
               : (unit, Eof_error.t) result)
         end;
         (match write_program st prog with
          | Error e -> note_failure st e
          | Ok () ->
            let payload_span = Obs.span_begin st.obs "campaign.payload" in
            (match run_program st ~budget:200 ~crashed:false with
             | Error e ->
               Obs.span_end st.obs payload_span;
               note_failure st e
             | Ok (status, crashed) ->
               Obs.span_end st.obs payload_span;
               Obs.Counter.incr st.c_payloads;
               st.consecutive_failures <- 0;
               (match status with
                | `Completed | `Crashed ->
                  st.executed_programs <- st.executed_programs + 1
                | `Rejected | `Aborted -> ());
               let new_edges = Feedback.covered st.fb - before in
               if Obs.active st.obs then begin
                 let status_name =
                   match status with
                   | `Completed -> "completed"
                   | `Crashed -> "crashed"
                   | `Rejected -> "rejected"
                   | `Aborted -> "aborted"
                 in
                 Obs.emit st.obs
                   (Obs.Event.Payload
                      { iteration = st.iteration; status = status_name; new_edges })
               end;
               if st.last_was_fresh then
                 st.fresh_yield <-
                   (0.95 *. st.fresh_yield)
                   +. (0.05 *. if new_edges > 0 then 1. else 0.);
               (* Crashing inputs are interesting the first time a
                  bug is seen; re-triggers of a known bug are not. *)
               let fresh_crash =
                 crashed && Hashtbl.length st.crash_table > distinct_before
               in
               (* Exploitation (input-to-state children, focus
                  bursts) only pays once cheap exploration has
                  dried up; before that it just starves the fresh
                  sampling that is still finding edges. *)
               let exploit_worthwhile = st.fresh_yield < 0.3 in
               (* Children are globally deduplicated, so each
                  unique patch runs once; no flooding. *)
               if exploit_worthwhile then queue_i2s_children st;
               if config.feedback && (new_edges > 0 || fresh_crash) then begin
                 ignore
                   (Corpus.add st.corpus ~prog ~new_edges ~crashed:fresh_crash
                     : bool);
                 Obs.Counter.incr st.c_corpus_admits;
                 if Obs.active st.obs then
                   Obs.emit st.obs
                     (Obs.Event.Corpus_admit
                        { new_edges; size = Corpus.size st.corpus });
                 (* Focused exploitation pays on narrow finds —
                    a fresh comparison bucket worth hill-climbing.
                    Broad hauls come from fresh exploration, which
                    a burst would only starve. *)
                 if new_edges > 0 && new_edges <= 4 && exploit_worthwhile
                 then st.focus <- Some (prog, 12)
               end)));
      if st.iteration mod config.snapshot_every = 0 then sample st
    with e ->
      (* Defensive: a campaign must never take the harness down. *)
      st.aborted <- true;
      if st.abort_cause = None then
        st.abort_cause <- Some (Eof_error.agent (Printexc.to_string e))
  end

let finish st =
  sample st;
  outcome_of_state st

(* Per-board observers for the farm orchestrator. *)

let feedback st = st.fb

let corpus st = st.corpus

let crashes_so_far st = List.rev st.crash_order

let crash_events_so_far st = st.crash_events

let executed_programs_so_far st = st.executed_programs

let iteration st = st.iteration

let is_dead st = st.dead

let virtual_s st = Machine.virtual_elapsed_s st.machine

let cpu_s st = Machine.cpu_elapsed_s st.machine

let run ?machine ?obs config build =
  match init ?machine ?obs config build with
  | Error e -> Error e
  | Ok st ->
    while not (finished st) do
      step st
    done;
    Ok (finish st)
