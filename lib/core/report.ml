let crash_to_text (c : Crash.t) =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf "EOF crash report\n================\n");
  Buffer.add_string buf (Printf.sprintf "target os   : %s\n" c.Crash.os);
  Buffer.add_string buf (Printf.sprintf "kind        : %s\n" (Crash.kind_name c.Crash.kind));
  Buffer.add_string buf (Printf.sprintf "operation   : %s()\n" c.Crash.operation);
  Buffer.add_string buf (Printf.sprintf "scope       : %s\n" c.Crash.scope);
  Buffer.add_string buf
    (Printf.sprintf "detected by : %s monitor\n" (Crash.monitor_name c.Crash.detected_by));
  Buffer.add_string buf (Printf.sprintf "iteration   : %d\n" c.Crash.iteration);
  Buffer.add_string buf (Printf.sprintf "\nmessage:\n  %s\n" c.Crash.message);
  if c.Crash.backtrace <> [] then begin
    Buffer.add_string buf "\nbacktrace:\n";
    List.iteri
      (fun i frame -> Buffer.add_string buf (Printf.sprintf "  Level %d: %s\n" (i + 1) frame))
      c.Crash.backtrace
  end;
  if c.Crash.program <> "" then
    Buffer.add_string buf (Printf.sprintf "\ntriggering program:\n%s\n" c.Crash.program);
  Buffer.contents buf

let sanitize name =
  String.map (fun c -> if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_' then c else '_') name

let save_crashes ~dir crashes =
  try
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    let paths =
      List.mapi
        (fun i crash ->
          let path =
            Filename.concat dir
              (Printf.sprintf "crash-%02d-%s.txt" (i + 1) (sanitize crash.Crash.operation))
          in
          let oc = open_out path in
          Fun.protect
            ~finally:(fun () -> close_out oc)
            (fun () -> output_string oc (crash_to_text crash));
          path)
        crashes
    in
    Ok paths
  with Sys_error e -> Error e

(* A wall-clock-free fingerprint of a campaign's observable results:
   identical bits in, identical line out. CI reruns a farm campaign and
   diffs this line to catch scheduling nondeterminism, and the
   differential backend check compares link and native runs through it —
   which is why virtual time must stay out of the digest: the two
   backends agree on every observable result but not on the clock. *)
let digest_line ~label ~coverage ~bitmap ~corpus ~crashes ~crash_events ~executed
    ~iterations_done =
  let b = Buffer.create 4096 in
  List.iter
    (fun bit -> Buffer.add_string b (string_of_int bit ^ ","))
    (Eof_util.Bitset.to_list bitmap);
  Buffer.add_char b '|';
  List.iter (fun p -> Buffer.add_string b (string_of_int (Prog.hash p) ^ ",")) corpus;
  Buffer.add_char b '|';
  List.iter (fun c -> Buffer.add_string b (Crash.dedup_key c ^ ",")) crashes;
  Buffer.add_string b
    (Printf.sprintf "|%d|%d|%d|%d" coverage crash_events executed iterations_done);
  Printf.sprintf
    "digest %s coverage=%d crashes=%d crash_events=%d executed=%d iterations=%d corpus=%d crc=%08lx"
    label coverage (List.length crashes) crash_events executed iterations_done
    (List.length corpus)
    (Eof_util.Crc32.digest_string (Buffer.contents b))

let campaign_digest (o : Campaign.outcome) =
  digest_line ~label:"campaign" ~coverage:o.Campaign.coverage
    ~bitmap:o.Campaign.coverage_bitmap ~corpus:o.Campaign.final_corpus
    ~crashes:o.Campaign.crashes ~crash_events:o.Campaign.crash_events
    ~executed:o.Campaign.executed_programs ~iterations_done:o.Campaign.iterations_done

let farm_digest (o : Farm.outcome) =
  digest_line
    ~label:
      (Printf.sprintf "farm boards=%d backend=%s" o.Farm.boards
         (Farm.backend_name o.Farm.backend))
    ~coverage:o.Farm.coverage ~bitmap:o.Farm.coverage_bitmap
    ~corpus:o.Farm.final_corpus ~crashes:o.Farm.crashes
    ~crash_events:o.Farm.crash_events ~executed:o.Farm.executed_programs
    ~iterations_done:o.Farm.iterations_done

(* The fleet-level fingerprint composes per-tenant digest lines in
   tenant order — campaigns, farms and whole hub runs are all
   fingerprintable the same way, and CI can [cmp] a two-tenant fleet
   soak exactly as it does a single farm. *)
let fleet_digest tenants =
  let tenants = List.sort (fun (a, _) (b, _) -> compare a b) tenants in
  let b = Buffer.create 1024 in
  List.iter
    (fun (tenant, digest) ->
      Buffer.add_string b tenant;
      Buffer.add_char b '=';
      Buffer.add_string b digest;
      Buffer.add_char b '\n')
    tenants;
  Printf.sprintf "digest fleet tenants=%d crc=%08lx" (List.length tenants)
    (Eof_util.Crc32.digest_string (Buffer.contents b))

let outcome_summary (o : Campaign.outcome) =
  String.concat "\n"
    [
      Printf.sprintf "target          : %s" o.Campaign.os;
      Printf.sprintf "payloads run    : %d (%d iterations)" o.Campaign.executed_programs
        o.Campaign.iterations_done;
      Printf.sprintf "branch coverage : %d distinct edges" o.Campaign.coverage;
      Printf.sprintf "corpus          : %d seeds" o.Campaign.corpus_size;
      Printf.sprintf "crashes         : %d distinct (%d events)"
        (List.length o.Campaign.crashes)
        o.Campaign.crash_events;
      Printf.sprintf "liveness        : %d resets, %d reflashes, %d stalls, %d link timeouts"
        o.Campaign.resets o.Campaign.reflashes o.Campaign.stalls o.Campaign.timeouts;
      Printf.sprintf "virtual time    : %.2f s" o.Campaign.virtual_s;
    ]
