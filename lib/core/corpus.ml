(* Seed storage plus the scheduler that decides which seed mutates
   next. Two schedules share the storage: [Uniform] is the original
   score-weighted lottery (one pick, one mutation), [Energy] is an
   AFLFast-style power schedule — a picked seed receives an energy
   budget (mutations before the next pick) that grows exponentially
   for seeds on the rare-edge frontier of their target. A target is a
   personality x API-table shape; seeds carry the target they were
   admitted under so hub-side merges across personalities keep each
   seed's schedule position. *)

type schedule = Uniform | Energy

let schedule_name = function Uniform -> "uniform" | Energy -> "energy"

let schedule_of_name s =
  match String.lowercase_ascii s with
  | "uniform" -> Ok Uniform
  | "energy" -> Ok Energy
  | other ->
    Error (Printf.sprintf "unknown schedule %S (expected uniform|energy)" other)

(* A target names one personality x API-table shape: the frontier maps
   are keyed on it, and a seed's energy is judged against the frontier
   of its own target. The digest covers entry names and argument
   shapes, so two builds of the same personality with the same API
   surface are the same target while a filtered spec is not. *)
type target = string

let default_target = "any#00000000"

let target_of ~os ~(table : Eof_rtos.Api.table) =
  let b = Buffer.create 512 in
  List.iter
    (fun (e : Eof_rtos.Api.entry) ->
      Buffer.add_string b e.Eof_rtos.Api.name;
      Buffer.add_char b '(';
      List.iter
        (fun (_, ty) ->
          Buffer.add_string b (Eof_rtos.Api.arg_type_to_string ty);
          Buffer.add_char b ',')
        e.Eof_rtos.Api.args;
      Buffer.add_char b ')';
      (match e.Eof_rtos.Api.ret with
       | `Resource k -> Buffer.add_string b k
       | `Status -> ());
      Buffer.add_char b ';')
    table.Eof_rtos.Api.entries;
  Printf.sprintf "%s#%08lx" os (Eof_util.Crc32.digest_string (Buffer.contents b))

let target_name t = t

type seed = {
  prog : Prog.t;
  hash : int;
  target : target;  (** personality the seed was admitted under *)
  new_edges : int;  (** edges credited at admission *)
  crashed : bool;
  mutable score : int;  (** selection weight, decays on reuse *)
  mutable picks : int;
}

(* Per-target frontier: the hashes of the most recent narrow finds
   (seeds admitted for a handful of new edges — the rare-path
   discoveries worth concentrating mutation energy on). *)
type frontier = { mutable rare : int list }

let frontier_cap = 16

type t = {
  rng : Eof_util.Rng.t;
  capacity : int;
  schedule : schedule;
  home : target;  (** default tag for locally admitted seeds *)
  mutable seeds : seed list;
  hashes : (int, unit) Hashtbl.t;
  frontiers : (target, frontier) Hashtbl.t;
  mutable total_added : int;
}

let create ?(capacity = 512) ?(schedule = Uniform) ?(target = default_target)
    ~rng () =
  {
    rng;
    capacity;
    schedule;
    home = target;
    seeds = [];
    hashes = Hashtbl.create 256;
    frontiers = Hashtbl.create 4;
    total_added = 0;
  }

let schedule t = t.schedule

let size t = List.length t.seeds

let is_empty t = t.seeds = []

let frontier t target =
  match Hashtbl.find_opt t.frontiers target with
  | Some f -> f
  | None ->
    let f = { rare = [] } in
    Hashtbl.replace t.frontiers target f;
    f

(* A narrow find — new coverage, but only a few edges — marks a rare
   path; its seed joins the target's frontier (same band the campaign
   uses to trigger a focus burst). *)
let rare_find ~new_edges = new_edges >= 1 && new_edges <= 4

let note_frontier t ~target ~hash ~new_edges =
  if rare_find ~new_edges then begin
    let f = frontier t target in
    let rare = List.filter (fun h -> h <> hash) f.rare in
    let rare = hash :: rare in
    let rec take n = function
      | [] -> []
      | x :: rest -> if n <= 0 then [] else x :: take (n - 1) rest
    in
    f.rare <- take frontier_cap rare
  end

let on_frontier t ~target prog =
  match Hashtbl.find_opt t.frontiers target with
  | None -> false
  | Some f -> List.mem (Prog.hash prog) f.rare

let frontier_size t ~target =
  match Hashtbl.find_opt t.frontiers target with
  | None -> 0
  | Some f -> List.length f.rare

let evict_if_full t =
  if List.length t.seeds > t.capacity then begin
    (* Drop the lowest-scoring seed. *)
    let worst =
      List.fold_left
        (fun acc s -> match acc with Some w when w.score <= s.score -> acc | _ -> Some s)
        None t.seeds
    in
    match worst with
    | Some w -> t.seeds <- List.filter (fun s -> s != w) t.seeds
    | None -> ()
  end

let add ?target t ~prog ~new_edges ~crashed =
  let target = match target with Some tg -> tg | None -> t.home in
  let h = Prog.hash prog in
  if Hashtbl.mem t.hashes h then false
  else begin
    Hashtbl.replace t.hashes h ();
    let score = max 1 ((new_edges * 4) + (if crashed then 20 else 0)) in
    t.seeds <- { prog; hash = h; target; new_edges; crashed; score; picks = 0 } :: t.seeds;
    t.total_added <- t.total_added + 1;
    note_frontier t ~target ~hash:h ~new_edges;
    evict_if_full t;
    true
  end

(* One weighted lottery draw over the live seeds; ages the winner.
   Both schedules select this way — they differ only in the energy
   granted to the winner. *)
let draw t =
  match t.seeds with
  | [] -> None
  | seeds ->
    let weighted = List.map (fun s -> (s, max 1 s.score)) seeds in
    let seed = Eof_util.Rng.weighted t.rng weighted in
    seed.picks <- seed.picks + 1;
    (* Decay so fresh discoveries get their turn. *)
    if seed.picks mod 4 = 0 then seed.score <- max 1 (seed.score * 3 / 4);
    Some seed

let pick t = match draw t with None -> None | Some s -> Some s.prog

let max_energy_shift = 4 (* energy is 1 lsl bonus, capped at 16 *)

(* AFLFast-style power schedule, in deterministic integers: frontier
   membership (a recent rare-path find under this target) doubles the
   budget twice, a first pick and a crash-or-broad find once each. *)
let energy_of t ~target seed =
  match t.schedule with
  | Uniform -> 1
  | Energy ->
    let on_frontier =
      match Hashtbl.find_opt t.frontiers target with
      | None -> false
      | Some f -> List.mem seed.hash f.rare
    in
    let bonus =
      (if on_frontier then 2 else 0)
      + (if seed.picks <= 1 then 1 else 0)
      + (if seed.crashed || seed.new_edges >= 8 then 1 else 0)
    in
    1 lsl min max_energy_shift bonus

let next t ~target =
  match draw t with
  | None -> None
  | Some seed -> Some (seed.prog, energy_of t ~target seed)

let merge dst src =
  (* Import oldest-first so the relative addition order of [src]'s seeds
     is preserved in [dst] (both lists are newest-first): merging a
     corpus into an empty one of the same capacity reproduces it
     exactly. Eviction runs after each import, exactly as in {!add}.
     Every scheduling field rides along — score, picks, admission
     credit and target tag — so a merged seed resumes its schedule
     position instead of starting over. *)
  let imported = ref 0 in
  List.iter
    (fun s ->
      if not (Hashtbl.mem dst.hashes s.hash) then begin
        Hashtbl.replace dst.hashes s.hash ();
        dst.seeds <-
          {
            prog = s.prog;
            hash = s.hash;
            target = s.target;
            new_edges = s.new_edges;
            crashed = s.crashed;
            score = s.score;
            picks = s.picks;
          }
          :: dst.seeds;
        dst.total_added <- dst.total_added + 1;
        evict_if_full dst;
        incr imported
      end)
    (List.rev src.seeds);
  (* Frontier state merges too: [src]'s rare finds land ahead of
     [dst]'s (they are the newer imports from [dst]'s point of view),
     deduplicated, within the cap. Targets are visited in sorted order
     so merging is deterministic. *)
  let src_targets =
    Hashtbl.fold (fun tg f acc -> (tg, f) :: acc) src.frontiers []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  List.iter
    (fun (tg, (sf : frontier)) ->
      let df = frontier dst tg in
      let combined =
        sf.rare @ List.filter (fun h -> not (List.mem h sf.rare)) df.rare
      in
      let rec take n = function
        | [] -> []
        | x :: rest -> if n <= 0 then [] else x :: take (n - 1) rest
      in
      df.rare <- take frontier_cap combined)
    src_targets;
  !imported

let progs t = List.map (fun s -> s.prog) t.seeds

let total_added t = t.total_added
