type seed = {
  prog : Prog.t;
  mutable score : int;  (** selection weight, decays on reuse *)
  mutable picks : int;
}

type t = {
  rng : Eof_util.Rng.t;
  capacity : int;
  mutable seeds : seed list;
  hashes : (int, unit) Hashtbl.t;
  mutable total_added : int;
}

let create ?(capacity = 512) ~rng () =
  { rng; capacity; seeds = []; hashes = Hashtbl.create 256; total_added = 0 }

let size t = List.length t.seeds

let is_empty t = t.seeds = []

let evict_if_full t =
  if List.length t.seeds > t.capacity then begin
    (* Drop the lowest-scoring seed. *)
    let worst =
      List.fold_left
        (fun acc s -> match acc with Some w when w.score <= s.score -> acc | _ -> Some s)
        None t.seeds
    in
    match worst with
    | Some w -> t.seeds <- List.filter (fun s -> s != w) t.seeds
    | None -> ()
  end

let add t ~prog ~new_edges ~crashed =
  let h = Prog.hash prog in
  if Hashtbl.mem t.hashes h then false
  else begin
    Hashtbl.replace t.hashes h ();
    let score = max 1 ((new_edges * 4) + (if crashed then 20 else 0)) in
    t.seeds <- { prog; score; picks = 0 } :: t.seeds;
    t.total_added <- t.total_added + 1;
    evict_if_full t;
    true
  end

let pick t =
  match t.seeds with
  | [] -> None
  | seeds ->
    let weighted = List.map (fun s -> (s, max 1 s.score)) seeds in
    let seed = Eof_util.Rng.weighted t.rng weighted in
    seed.picks <- seed.picks + 1;
    (* Decay so fresh discoveries get their turn. *)
    if seed.picks mod 4 = 0 then seed.score <- max 1 (seed.score * 3 / 4);
    Some seed.prog

let merge dst src =
  (* Import oldest-first so the relative addition order of [src]'s seeds
     is preserved in [dst] (both lists are newest-first): merging a
     corpus into an empty one of the same capacity reproduces it
     exactly. Eviction runs after each import, exactly as in {!add}. *)
  let imported = ref 0 in
  List.iter
    (fun s ->
      let h = Prog.hash s.prog in
      if not (Hashtbl.mem dst.hashes h) then begin
        Hashtbl.replace dst.hashes h ();
        dst.seeds <- { prog = s.prog; score = s.score; picks = s.picks } :: dst.seeds;
        dst.total_added <- dst.total_added + 1;
        evict_if_full dst;
        incr imported
      end)
    (List.rev src.seeds);
  !imported

let progs t = List.map (fun s -> s.prog) t.seeds

let total_added t = t.total_added
