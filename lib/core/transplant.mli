open Eof_spec

(** Cross-personality seed transplantation.

    The hub's corpus exchange is lossless between shards of the same
    personality; between personalities the API tables differ, so a seed
    must be retyped before it can be adopted. {!retype} matches calls by
    resource signature ({!Ast.call_shape}), drops the unmappable ones,
    remaps surviving resource references and re-fits scalar arguments to
    the destination types, then revalidates. The whole mapping is
    deterministic — no randomness — so transplants replay exactly. *)

type outcome = {
  prog : Prog.t;  (** the retyped program, well-typed for the destination *)
  kept : int;  (** calls that survived the mapping *)
  dropped : int;  (** calls with no compatible destination *)
}

val retype :
  dst_spec:Ast.t -> dst_table:Eof_rtos.Api.table -> Prog.t -> outcome option
(** Retype [prog] (admitted under some other personality) against the
    destination spec/table. [None] when no call maps or the result fails
    {!Prog.validate} — a rejected transplant is simply not relayed.
    Guaranteed validate-clean on success. *)
