open Eof_os

(** The EOF fuzzing loop.

    One campaign drives one target build over its debug session:
    generate or mutate an API-aware program, deliver it through the
    mailbox, pump the agent between its binding-point breakpoints, drain
    coverage and UART, classify crashes, keep the target alive
    (Algorithm 1), and feed interesting inputs back into the corpus.

    The configuration knobs double as the paper's ablations:
    [feedback:false] is EOF-nf, [dep_aware:false] disables
    resource-dependency-aware generation (ablation A2),
    [stall_watchdog:false] disables the PC-stall watchdog (A1). *)

(** How the campaign returns the target to a known-good state. *)
type reset_policy =
  | Ladder
      (** the original escalation ladder only; the reflash rung rewrites
          every partition from the golden image (no snapshot is armed) *)
  | Snapshot
      (** arm a pristine copy-on-write snapshot right after install; the
          ladder's reflash rung then restores O(dirty pages) instead of
          O(image size). Identical campaign outcomes to [Ladder] on a
          fault-free link — only recovery cost changes. *)
  | Fresh_per_program
      (** additionally rewind to the pristine snapshot before {e every}
          payload: no target-side state (heap, kernel tables, leaked
          objects) survives between programs. Host-side feedback and
          corpus persist. *)

val reset_policy_name : reset_policy -> string

val reset_policy_of_name : string -> (reset_policy, string) result
(** ["ladder"], ["snapshot"], ["fresh-per-program"] (or ["fresh"]),
    case-insensitive. *)

type config = {
  seed : int64;
  iterations : int;  (** payload budget *)
  feedback : bool;
  dep_aware : bool;
  stall_watchdog : bool;
  stall_threshold : int;
      (** consecutive identical PC samples before the stall watchdog
          fires (see {!Liveness.default_stall_threshold}) *)
  max_prog_len : int;
  mutation_bias : float;
      (** ceiling for P(mutate a corpus seed); the actual split tracks
          how often fresh generation still finds new coverage, shifting
          budget to mutation as random exploration dries up *)
  snapshot_every : int;  (** iterations between coverage samples *)
  api_filter : string list option;
      (** restrict generation to these calls (the Table-4 setup, where
          only the HTTP/JSON surface is exercised) *)
  irq_injection : bool;
      (** inject random GPIO edges alongside test cases, driving the
          interrupt paths the paper leaves to future work (default off,
          matching EOF's published scope) *)
  initial_seeds : Prog.t list;
      (** corpus programs to replay before fuzzing starts (resuming a
          saved corpus) *)
  reboot_every : int;
      (** preventive reboot period: without it a long-lived boot slowly
          exhausts kernel tables and the heap (objects accumulate across
          test cases), starving every later test case *)
  batch_link : bool;
      (** use the vectored debug link (default true): every continue is
          fused with the coverage/cmp/UART drain into a single [vBatch]
          exchange and program delivery uses binary [X] packets, cutting
          link round trips per stop from six-plus to one. [false] keeps
          the legacy one-request-per-read path — the cost model the
          baseline comparisons are calibrated against. Coverage and
          crash outcomes are identical either way; only link traffic
          differs. *)
  fault_rate : float;
      (** probability that any one debug-link exchange starts a fault
          burst (drops, truncations, NAK storms, timeouts, post-reset
          garbage). 0 (the default) attaches no injector at all — the
          link code path is bit-identical to a build without fault
          injection. Only used when {!init} creates the machine itself;
          a supplied machine keeps whatever injector it was built
          with. *)
  fault_seed : int64;
      (** seed of the injector's private RNG; the whole fault schedule —
          which exchanges fault and how — is a deterministic function of
          this seed and the exchange sequence *)
  backend : Eof_agent.Machine.backend;
      (** execution backend (default [Link]). [Link] drives the target
          over the simulated debug probe; [Native] transplants agent +
          personality in-process — no RSP framing, no transport,
          coverage drained by direct memory access, virtual time charged
          from board CPU cost only. Outcomes and digests are identical
          across backends on the same seed (enforced by {!Diff});
          setting [fault_rate > 0] with [Native] is a [Config] error,
          since link faults cannot exist without a link. Only used when
          {!init} creates the machine; a supplied machine's own backend
          wins. *)
  reset_policy : reset_policy;
      (** how the target gets back to pristine state (default
          [Ladder]). The snapshot policies capture the pristine image
          during {!init}, right after install — before the target ever
          runs. *)
  schedule : Corpus.schedule;
      (** seed scheduling (default [Uniform], which is RNG-identical to
          the pre-scheduler corpus: one pick, one mutation). [Energy]
          grants power-schedule mutation budgets judged against the
          campaign target's rare-edge frontier. *)
  gen_mode : Gen.mode;
      (** generator engine (default [Interp]). [Compiled] emits
          byte-identical programs through pre-resolved candidate sets —
          a pure speedup. *)
}

val default_config : config
(** seed 1, 400 iterations, all features on, programs up to 12 calls. *)

type sample = { iteration : int; virtual_s : float; coverage : int }

type outcome = {
  os : string;
  coverage : int;  (** distinct edges at the end *)
  series : sample list;  (** chronological coverage samples *)
  crashes : Crash.t list;  (** deduplicated, in discovery order *)
  crash_events : int;  (** total crash occurrences before dedup *)
  executed_programs : int;
  resets : int;
  reflashes : int;
  stalls : int;
  timeouts : int;
  corpus_size : int;
  virtual_s : float;
  iterations_done : int;
  coverage_bitmap : Eof_util.Bitset.t;
      (** final edge bitmap (edge index = site index * variants + variant) *)
  final_corpus : Prog.t list;  (** seeds at campaign end, for persistence *)
  abort_cause : Eof_util.Eof_error.t option;
      (** why the campaign stopped early, when it did: the ladder's
          [Board_dead] verdict, the fifth consecutive unrecoverable
          failure, or an escaped exception. [None] means the iteration
          budget was reached. *)
}

val filter_spec : Eof_spec.Ast.t -> string list -> Eof_spec.Ast.t
(** Restrict a spec to an allowlist of call names, dropping resource
    kinds that lose all producers (shared with the baseline drivers). *)

val run :
  ?machine:Eof_agent.Machine.t -> ?obs:Eof_obs.Obs.t -> config -> Osbuild.t ->
  (outcome, Eof_util.Eof_error.t) result
(** Runs the loop to the iteration budget (or aborts early after
    repeated unrecoverable link failures or a dead board, returning
    what it has — see [outcome.abort_cause]).
    Equivalent to {!init} followed by {!step} until {!finished} and a
    final {!finish} — it is exactly that.

    [obs] is the telemetry bus: the campaign emits per-payload events
    and spans ([Payload], [Corpus_admit], [Crash_found], plus whatever
    the layers below emit) and bumps [campaign.*] counters. Purely a
    reporting plane — outcomes are identical with or without it. *)

(** {2 Reentrant single-board stepping}

    The loop above, opened up for external schedulers (the board farm):
    [init] wires one board and returns its explicit campaign state,
    [step] runs exactly one iteration (one payload attempt, including
    recovery), and [finish] seals the outcome. A [step] never raises;
    an escaping exception marks the state aborted and [finished]
    becomes true. *)

type state
(** All per-board campaign state: generator, corpus, coverage map,
    crash table, pending link data, failure counters. One board each. *)

val init :
  ?machine:Eof_agent.Machine.t -> ?obs:Eof_obs.Obs.t -> config -> Osbuild.t ->
  (state, Eof_util.Eof_error.t) result
(** Synthesize + validate the spec, wire the machine (creating one when
    not supplied), arm the binding-point breakpoints, replay
    [initial_seeds]. Fails only on spec or link-bringup errors. When
    [obs] is given its clock is bound to this board's virtual time. *)

val step : state -> unit
(** One campaign iteration: advance to [executor_main], pick/mutate a
    program, deliver it, pump to completion, classify, feed back. A
    no-op once {!finished}. *)

val finished : state -> bool
(** Budget exhausted, five unrecoverable link failures in a row, an
    aborted iteration, or a board the escalation ladder gave up for
    dead. *)

val finish : state -> outcome
(** Take the final coverage sample and seal the outcome. Call once. *)

(** Read-only observers used by the farm's epoch synchronisation. *)

val feedback : state -> Feedback.t

val corpus : state -> Corpus.t

val crashes_so_far : state -> Crash.t list
(** Deduplicated crashes in discovery order, as of now. *)

val crash_events_so_far : state -> int

val executed_programs_so_far : state -> int

val iteration : state -> int

val is_dead : state -> bool
(** The recovery escalation ladder was exhausted on this board: retry,
    resync, reset and reflash all failed in a row. The board takes no
    further part in the campaign. *)

val virtual_s : state -> float
(** The board's virtual clock — CPU time plus debug-link latency on
    the link backend, CPU time alone on the native backend. *)

val cpu_s : state -> float
(** The board's CPU time alone. Backend-invariant for a given payload
    schedule, so the cooperative farm scheduler keys on it: board
    interleaving (and therefore corpus cross-pollination order) is then
    identical whether the shards run over the link or natively, which
    is what lets the differential farm oracle demand digest equality. *)
