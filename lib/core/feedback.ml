type t = { bitmap : Eof_util.Bitset.t }

let create ~edge_capacity = { bitmap = Eof_util.Bitset.create (max 1 edge_capacity) }

let merge t edges =
  List.fold_left
    (fun acc e ->
      if e >= 0 && e < Eof_util.Bitset.capacity t.bitmap then
        if Eof_util.Bitset.add t.bitmap e then acc + 1 else acc
      else acc)
    0 edges

let merge_array t edges ~len =
  if len > Array.length edges then invalid_arg "Feedback.merge_array: len too large";
  let acc = ref 0 in
  for i = 0 to len - 1 do
    let e = edges.(i) in
    if e >= 0 && e < Eof_util.Bitset.capacity t.bitmap then
      if Eof_util.Bitset.add t.bitmap e then incr acc
  done;
  !acc

let union_into ~dst ~src = Eof_util.Bitset.union_into ~dst:dst.bitmap ~src:src.bitmap

let covered t = Eof_util.Bitset.count t.bitmap

let snapshot t = Eof_util.Bitset.copy t.bitmap
