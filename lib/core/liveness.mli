open Eof_os

(** Liveness watchdogs and state restoration (the paper's Algorithm 1).

    Two host-side checks with no target instrumentation: a
    connection-timeout watchdog (a dead link means a failed boot or
    total unresponsiveness) and a PC-stall watchdog (a continue that
    does not move the program counter means the core cannot execute).
    Either verdict triggers {!restore}: reflash every partition from the
    golden image at the offsets recorded in the partition table, then
    reboot.

    All operations go through the backend-polymorphic
    {!Eof_agent.Machine}, so the same watchdog and restoration ladder
    drive both the debug-link and the native transplant backends (on
    native, the connection-lost verdict is unreachable — there is no
    link to lose). *)

type verdict =
  | Alive
  | First_observation  (** LastPC was unset; now armed (Algorithm 1 lines 6-8) *)
  | Connection_lost
  | Pc_stalled of int

type error = Eof_util.Eof_error.t
(** Typed restoration failure — stringly only at the reporting
    boundary. Link failures mid-restore carry the partition name, the
    failing step (erase / chunk offset / done) and the session's retry
    count as context breadcrumbs; a partition without an image blob is
    [Missing_blob]. *)

val error_to_string : error -> string

type t

val default_stall_threshold : int
(** 3: a stall is declared only after this many {e consecutive} repeated
    PC samples. One repeat is routine (breakpoint parking, polling
    loops); demanding a streak keeps the watchdog from reflashing a
    healthy target. *)

val create : ?obs:Eof_obs.Obs.t -> ?stall_threshold:int -> unit -> t
(** @raise Invalid_argument when [stall_threshold < 1]. With [obs],
    every {!check} emits a [Liveness_verdict] event. *)

val stall_threshold : t -> int

val stall_streak : t -> int
(** Current consecutive-repeat count (0 after progress or {!reset}). *)

val reset : t -> unit
(** Forget LastPC and the stall streak (call when the target
    demonstrably made progress). *)

val check : t -> Eof_agent.Machine.t -> verdict
(** One LivenessWatchDog() evaluation. [Pc_stalled] requires the PC to
    repeat on [stall_threshold] consecutive checks; any new PC value
    resets the streak and yields [Alive]. *)

val restore_partitions :
  ?obs:Eof_obs.Obs.t ->
  Eof_agent.Machine.t ->
  flash_base:int ->
  image:Eof_hw.Image.t ->
  table:Eof_hw.Partition.t ->
  (int, error) result
(** Reflash each [table] entry from [image]'s blobs in 2048-byte chunks
    (no reboot); returns the number of partitions written. Emits a
    [Reflash_partition] event per partition. Exposed separately from
    {!restore} so tests can drive hand-built tables (missing-blob error
    path, odd-sized final chunks). *)

val restore :
  ?obs:Eof_obs.Obs.t ->
  Eof_agent.Machine.t -> build:Osbuild.t -> (int, error) result
(** StateRestoration(): make every partition pristine and reboot;
    returns the number of partitions restored. When the machine has an
    armed snapshot ({!Eof_agent.Machine.has_snapshot}), one
    O(dirty pages) snapshot restore replaces the partition-by-partition
    reflash — same end state, a fraction of the link traffic; otherwise
    each partition is rewritten from the golden image. Emits
    [Reflash_partition] events (full path) or a [Snapshot_restore]
    (fast path) and a final [Restore_done]. When [obs] is omitted the
    machine's own bus is used. *)

val reboot_only : Eof_agent.Machine.t -> (unit, error) result
(** A plain reset, for degraded states with an intact image. *)
