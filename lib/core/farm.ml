open Eof_os
module Rng = Eof_util.Rng
module Bitset = Eof_util.Bitset
module Machine = Eof_agent.Machine
module Obs = Eof_obs.Obs
module Inject = Eof_debug.Inject
module Eof_error = Eof_util.Eof_error

type backend = Cooperative | Domains

let backend_name = function Cooperative -> "cooperative" | Domains -> "domains"

let backend_of_name s =
  match String.lowercase_ascii s with
  | "cooperative" -> Ok Cooperative
  | "domains" -> Ok Domains
  | other -> Error (Printf.sprintf "unknown farm backend %S (cooperative|domains)" other)

type config = {
  boards : int;
  sync_every : int;
  backend : backend;
  base : Campaign.config;
}

let default_config =
  { boards = 1; sync_every = 25; backend = Cooperative; base = Campaign.default_config }

type sync_sample = { executed : int; virtual_s : float; coverage : int }

type outcome = {
  boards : int;
  backend : backend;
  coverage : int;
  coverage_bitmap : Bitset.t;
  crashes : Crash.t list;
  crash_events : int;
  executed_programs : int;
  iterations_done : int;
  corpus_size : int;
  final_corpus : Prog.t list;
  virtual_s : float;
  wall_s : float;
  syncs : int;
  sync_series : sync_sample list;
  per_board : Campaign.outcome array;
  dead_boards : int;
}

(* Board 0 keeps the campaign seed so a one-board farm is the campaign;
   the other shards derive statistically independent streams. *)
let board_seed base i =
  if i = 0 then base
  else Rng.next64 (Rng.create (Int64.add base (Int64.mul (Int64.of_int i) 0x9E3779B97F4A7C15L)))

(* The total payload budget split round-robin: the first (total mod
   boards) shards carry the remainder. *)
let shard_iterations ~total ~boards i =
  (total / boards) + (if i < total mod boards then 1 else 0)

(* Each board's probe glitches on its own schedule: derive an
   independent fault-injector seed per board (board 0 keeps the base
   seed, mirroring {!board_seed}). *)
let board_fault_seed base i =
  if i = 0 then base
  else Rng.next64 (Rng.create (Int64.add base (Int64.mul (Int64.of_int i) 0xD1B54A32D192ED03L)))

(* --- shared (host-side) campaign state --------------------------------- *)

type shared = {
  fb : Feedback.t;  (* global coverage: the union of every shard's map *)
  corpus : Corpus.t;  (* the cross-board corpus shards pollinate through *)
  crash_keys : (string, unit) Hashtbl.t;
  mutable crashes_rev : Crash.t list;  (* reverse global discovery order *)
  mutable executed_synced : int;  (* payloads covered by past merges *)
  mutable virtual_max : float;  (* farm clock high-water mark at merges *)
  mutable syncs : int;
  mutable series_rev : sync_sample list;
  obs : Obs.t;  (* farm-level handle: epoch-sync events, no board tag *)
}

let make_shared ?obs ~edge_capacity ~boards ~seed () =
  let obs = match obs with Some o -> o | None -> Obs.create () in
  let s =
    {
      fb = Feedback.create ~edge_capacity;
      (* Big enough that no shard's survivors are evicted from the global
         view; its rng is never used (the farm never [pick]s from it). *)
      corpus = Corpus.create ~capacity:(512 * boards) ~rng:(Rng.create seed) ();
      crash_keys = Hashtbl.create 64;
      crashes_rev = [];
      executed_synced = 0;
      virtual_max = 0.;
      syncs = 0;
      series_rev = [];
      obs;
    }
  in
  (* Farm-level events are timestamped by the merge high-water mark —
     deterministic under the cooperative backend. *)
  Obs.set_clock obs (fun () -> s.virtual_max);
  s

(* --- per-shard merge cursors ------------------------------------------- *)

(* Everything a shard publishes at an epoch is monotone: its coverage
   bitmap only gains bits, its corpus only counts additions up, its
   crash-event counter only increments, and the shared exchange corpus
   likewise. A cursor remembers each monotone counter at the shard's
   last merge, so an unchanged counter proves the corresponding merge
   would import nothing and the whole walk can be elided. This is what
   keeps the Domains backend's critical section near-empty on quiet
   epochs: three integer compares instead of a bitmap union plus two
   full corpus walks under the lock. The elisions are pure no-op
   removals, so cooperative results stay bit-identical. *)
type cursor = {
  mutable cov : int;  (* shard coverage count at last push *)
  mutable added : int;  (* shard corpus total_added at last push/pull *)
  mutable crash_events : int;  (* shard crash events at last push *)
  mutable pulled : int;  (* shared corpus total_added at last pull *)
  mutable exec : int;  (* shard executed payloads already accounted *)
}

let make_cursor () = { cov = 0; added = 0; crash_events = 0; pulled = 0; exec = 0 }

(* Merge one shard's discoveries into the global structures. Cheap by
   construction: the coverage merge is one bitmap union, the corpus
   merge rejects already-seen hashes in O(1) each, crash dedup only
   walks the shard's (short, already per-board-deduplicated) list — and
   the cursor elides each of those entirely when the shard found
   nothing new since its last epoch. *)
let merge_board shared st cur =
  let cov = Feedback.covered (Campaign.feedback st) in
  if cov <> cur.cov then begin
    ignore (Feedback.union_into ~dst:shared.fb ~src:(Campaign.feedback st) : int);
    cur.cov <- cov
  end;
  let added = Corpus.total_added (Campaign.corpus st) in
  if added <> cur.added then begin
    ignore (Corpus.merge shared.corpus (Campaign.corpus st) : int);
    cur.added <- added
  end;
  let events = Campaign.crash_events_so_far st in
  if events <> cur.crash_events then begin
    List.iter
      (fun c ->
        let k = Crash.dedup_key c in
        if not (Hashtbl.mem shared.crash_keys k) then begin
          Hashtbl.replace shared.crash_keys k ();
          shared.crashes_rev <- c :: shared.crashes_rev
        end)
      (Campaign.crashes_so_far st);
    cur.crash_events <- events
  end;
  let e = Campaign.executed_programs_so_far st in
  shared.executed_synced <- shared.executed_synced + (e - cur.exec);
  cur.exec <- e;
  shared.virtual_max <- Float.max shared.virtual_max (Campaign.virtual_s st)

(* Cross-pollination: pull the fleet's merged discoveries back into one
   shard, skipped when the shared corpus saw no addition since this
   shard's last pull. Right after a pull the shard corpus is a subset of
   the shared hash set, so the push cursor can jump too. *)
let pull_board shared st cur =
  let sa = Corpus.total_added shared.corpus in
  if sa <> cur.pulled then begin
    ignore (Corpus.merge (Campaign.corpus st) shared.corpus : int);
    cur.pulled <- sa;
    cur.added <- Corpus.total_added (Campaign.corpus st)
  end

let record_sample shared =
  shared.syncs <- shared.syncs + 1;
  let coverage = Feedback.covered shared.fb in
  if Obs.active shared.obs then
    Obs.emit shared.obs
      (Obs.Event.Epoch_sync
         { sync = shared.syncs; executed = shared.executed_synced; coverage });
  shared.series_rev <-
    {
      executed = shared.executed_synced;
      virtual_s = shared.virtual_max;
      coverage;
    }
    :: shared.series_rev

(* --- reentrant farm state ------------------------------------------------ *)

type t = {
  config : config;
  shared : shared;
  states : Campaign.state array;
  cursors : cursor array;
  mutable since : int;  (* payloads executed since the last epoch *)
  mutable finalized : bool;  (* the final epoch merge has run *)
  mutable paused : bool;  (* lease revoked: the scheduler skips this farm *)
  mutable result : outcome option;
  t0 : float;
}

let epoch t =
  let n = Array.length t.states in
  Array.iteri (fun i st -> merge_board t.shared st t.cursors.(i)) t.states;
  (* Cross-pollination is skipped for a single board — there is nothing
     to exchange, and skipping keeps the one-board farm bit-identical to
     the plain campaign even across corpus evictions. *)
  if n > 1 then
    Array.iteri (fun i st -> pull_board t.shared st t.cursors.(i)) t.states;
  record_sample t.shared

(* --- deterministic cooperative backend --------------------------------- *)

let finished t = Array.for_all Campaign.finished t.states

(* Round-robin by target CPU time: always step the board whose CPU
   clock is furthest behind (ties to the lowest index), which
   interleaves shards as N physical boards would interleave in real
   time — and with one board degenerates to the plain campaign loop.
   CPU time rather than full virtual time because the latter includes
   link latency, which only exists on the link backend: keying on it
   would make the interleaving backend-dependent and break the
   differential oracle's farm equality. *)
let next_board t =
  if t.paused then None
  else
  let n = Array.length t.states in
  let best = ref (-1) and best_t = ref infinity in
  for i = n - 1 downto 0 do
    if not (Campaign.finished t.states.(i)) then begin
      let time = Campaign.cpu_s t.states.(i) in
      if time <= !best_t then begin
        best := i;
        best_t := time
      end
    end
  done;
  if !best < 0 then None else Some !best

let next_cpu_s t =
  match next_board t with
  | None -> None
  | Some i -> Some (Campaign.cpu_s t.states.(i))

let step t =
  (match t.config.backend with
   | Cooperative -> ()
   | Domains -> invalid_arg "Farm.step: only cooperative farms are steppable");
  match next_board t with
  | None -> ()
  | Some i ->
    let st = t.states.(i) in
    let before = Campaign.executed_programs_so_far st in
    Campaign.step st;
    if Campaign.executed_programs_so_far st > before then t.since <- t.since + 1;
    if t.since >= t.config.sync_every then begin
      epoch t;
      t.since <- 0
    end

let run_cooperative t =
  while not (finished t) do
    step t
  done

(* --- OCaml 5 Domain backend -------------------------------------------- *)

(* Shards are grouped onto at most [Domain.recommended_domain_count]
   domains — one shard per domain when the host has the cores, several
   shards interleaved cooperatively per domain when it does not.
   Spawning a domain per board regardless of core count is what the old
   BENCH.json regression was: OCaml 5 minor collections are
   stop-the-world barriers across every running domain, so oversubscribed
   domains spend their wall time waiting for descheduled peers to reach
   the barrier instead of fuzzing. Every shard-local structure is owned
   by its domain; the only shared state is [shared], guarded by one
   mutex taken once per epoch boundary — contention is amortized over
   [sync_every] payloads of lock-free fuzzing, and the merge-cursor
   elisions keep the held section to integer compares when a shard has
   nothing new. *)
let run_domains t =
  let n = Array.length t.states in
  let lock = Mutex.create () in
  let sync i =
    let st = t.states.(i) and cur = t.cursors.(i) in
    Mutex.lock lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock lock)
      (fun () ->
        merge_board t.shared st cur;
        if n > 1 then pull_board t.shared st cur;
        record_sample t.shared)
  in
  let workers = min n (max 1 (Domain.recommended_domain_count ())) in
  (* Round-robin shard assignment; within a group the worker interleaves
     its shards by the cooperative min-CPU rule, so a one-core host runs
     the whole farm as one cooperative schedule instead of eight
     barrier-thrashing domains. *)
  let group w = List.filter (fun i -> i mod workers = w) (List.init n Fun.id) in
  let worker shards =
    let since = Hashtbl.create 8 in
    List.iter (fun i -> Hashtbl.replace since i 0) shards;
    let pick () =
      List.fold_left
        (fun best i ->
          if Campaign.finished t.states.(i) then best
          else
            let time = Campaign.cpu_s t.states.(i) in
            match best with
            | Some (_, bt) when bt <= time -> best
            | _ -> Some (i, time))
        None (List.rev shards)
    in
    let rec loop () =
      match pick () with
      | None -> ()
      | Some (i, _) ->
        let st = t.states.(i) in
        let before = Campaign.executed_programs_so_far st in
        Campaign.step st;
        if Campaign.executed_programs_so_far st > before then
          Hashtbl.replace since i (Hashtbl.find since i + 1);
        if Campaign.finished st then sync i
        else if Hashtbl.find since i >= t.config.sync_every then begin
          sync i;
          Hashtbl.replace since i 0
        end;
        loop ()
    in
    loop ()
  in
  let domains =
    Array.init workers (fun w -> Domain.spawn (fun () -> try worker (group w) with _ -> ()))
  in
  Array.iter Domain.join domains;
  (* Each worker ran every shard's final sync; a farm-level closing
     epoch would add a spurious sample. *)
  t.finalized <- true

(* --- top level ---------------------------------------------------------- *)

let init ?obs ?inject_for (config : config) mk_build =
  if config.boards < 1 then Error (Eof_error.config "farm: boards must be >= 1")
  else if config.sync_every < 1 then Error (Eof_error.config "farm: sync_every must be >= 1")
  else if config.base.Campaign.backend = Machine.Native && config.base.Campaign.fault_rate > 0.
  then
    (* Reject before any board is built; Campaign.init repeats the check
       per board for machines supplied by other callers. *)
    Error
      (Eof_error.config
         "fault injection is link-only: the native backend has no link to fault")
  else begin
    let t0 = Unix.gettimeofday () in
    (* The fault schedule rides the fleet: each board gets its own
       independently seeded injector (or none at rate 0). Tests override
       [inject_for] to target specific boards. *)
    let inject_for =
      match inject_for with
      | Some f -> f
      | None ->
        fun i ->
          if config.base.fault_rate > 0. then
            Some
              {
                Inject.default_config with
                Inject.rate = config.base.fault_rate;
                seed = board_fault_seed config.base.fault_seed i;
              }
          else None
    in
    match
      Machine.create_fleet ?obs ~inject_for ~backend:config.base.Campaign.backend
        ~boards:config.boards mk_build
    with
    | Error e -> Error e
    | Ok fleet ->
      let edge_capacity = Osbuild.edge_capacity (fst fleet.(0)) in
      if Array.exists (fun (b, _) -> Osbuild.edge_capacity b <> edge_capacity) fleet
      then
        Error
          (Eof_error.config
             "farm: boards disagree on coverage-map capacity (different targets?)")
      else begin
        let rec init_all i acc =
          if i >= Array.length fleet then Ok (Array.of_list (List.rev acc))
          else begin
            let build, machine = fleet.(i) in
            let cfg =
              {
                config.base with
                seed = board_seed config.base.seed i;
                iterations =
                  shard_iterations ~total:config.base.iterations ~boards:config.boards i;
              }
            in
            let board_obs = Option.map (fun bus -> Obs.for_board bus i) obs in
            match Campaign.init ~machine ?obs:board_obs cfg build with
            | Ok st -> init_all (i + 1) (st :: acc)
            | Error e -> Error (Eof_error.with_context (Printf.sprintf "board %d" i) e)
          end
        in
        match init_all 0 [] with
        | Error e -> Error e
        | Ok states ->
          let shared =
            make_shared ?obs ~edge_capacity ~boards:config.boards
              ~seed:config.base.seed ()
          in
          Ok
            {
              config;
              shared;
              states;
              cursors = Array.init (Array.length states) (fun _ -> make_cursor ());
              since = 0;
              finalized = false;
              paused = false;
              result = None;
              t0;
            }
      end
  end

(* --- mid-run observers (for the hub worker) ----------------------------- *)

let coverage t = Feedback.covered t.shared.fb

let coverage_bitmap t = Feedback.snapshot t.shared.fb

let exchange_corpus t = t.shared.corpus

let crashes_so_far t = List.rev t.shared.crashes_rev

let executed_so_far t = t.shared.executed_synced

let virtual_now t = t.shared.virtual_max

let syncs_so_far t = t.shared.syncs

(* A revoked lease must stop contributing immediately: run one
   off-cycle epoch so the shared structures reflect everything executed
   so far (the worker's final flush reads them), then freeze the
   scheduler. Pausing is terminal for this farm instance — the hub
   reassigns the shard to another worker, which rebuilds it fresh. *)
let pause t =
  if not t.paused then begin
    epoch t;
    t.since <- 0;
    t.paused <- true
  end

let paused t = t.paused

let adopt t progs =
  List.fold_left
    (fun n prog ->
      if Corpus.add t.shared.corpus ~prog ~new_edges:1 ~crashed:false then n + 1 else n)
    0 progs

let finish t =
  match t.result with
  | Some outcome -> outcome
  | None ->
    if not t.finalized then begin
      epoch t;
      t.finalized <- true
    end;
    let per_board = Array.map Campaign.finish t.states in
    (* The reported corpus is re-merged from the final shard corpora
       (shard order): unlike the exchange corpus it never contains seeds
       every shard has since evicted, and for one board it reproduces
       that board's corpus exactly. *)
    let final =
      Corpus.create ~capacity:(512 * t.config.boards)
        ~rng:(Rng.create t.config.base.seed) ()
    in
    Array.iter
      (fun st -> ignore (Corpus.merge final (Campaign.corpus st) : int))
      t.states;
    let sum f = Array.fold_left (fun a o -> a + f o) 0 per_board in
    let outcome =
      {
        boards = t.config.boards;
        backend = t.config.backend;
        coverage = Feedback.covered t.shared.fb;
        coverage_bitmap = Feedback.snapshot t.shared.fb;
        crashes = List.rev t.shared.crashes_rev;
        crash_events = sum (fun o -> o.Campaign.crash_events);
        executed_programs = sum (fun o -> o.Campaign.executed_programs);
        iterations_done = sum (fun o -> o.Campaign.iterations_done);
        corpus_size = Corpus.size final;
        final_corpus = Corpus.progs final;
        virtual_s =
          Array.fold_left (fun a o -> Float.max a o.Campaign.virtual_s) 0. per_board;
        wall_s = Unix.gettimeofday () -. t.t0;
        syncs = t.shared.syncs;
        sync_series = List.rev t.shared.series_rev;
        per_board;
        dead_boards =
          Array.fold_left
            (fun a st -> if Campaign.is_dead st then a + 1 else a)
            0 t.states;
      }
    in
    t.result <- Some outcome;
    outcome

let run ?obs ?inject_for (config : config) mk_build =
  match init ?obs ?inject_for config mk_build with
  | Error e -> Error e
  | Ok t ->
    (match config.backend with
     | Cooperative -> run_cooperative t
     | Domains -> run_domains t);
    Ok (finish t)
