open Eof_os
module Rng = Eof_util.Rng
module Bitset = Eof_util.Bitset
module Machine = Eof_agent.Machine
module Obs = Eof_obs.Obs
module Inject = Eof_debug.Inject
module Eof_error = Eof_util.Eof_error

type backend = Cooperative | Domains

let backend_name = function Cooperative -> "cooperative" | Domains -> "domains"

let backend_of_name s =
  match String.lowercase_ascii s with
  | "cooperative" -> Ok Cooperative
  | "domains" -> Ok Domains
  | other -> Error (Printf.sprintf "unknown farm backend %S (cooperative|domains)" other)

type config = {
  boards : int;
  sync_every : int;
  backend : backend;
  base : Campaign.config;
}

let default_config =
  { boards = 1; sync_every = 25; backend = Cooperative; base = Campaign.default_config }

type sync_sample = { executed : int; virtual_s : float; coverage : int }

type outcome = {
  boards : int;
  backend : backend;
  coverage : int;
  coverage_bitmap : Bitset.t;
  crashes : Crash.t list;
  crash_events : int;
  executed_programs : int;
  iterations_done : int;
  corpus_size : int;
  final_corpus : Prog.t list;
  virtual_s : float;
  wall_s : float;
  syncs : int;
  sync_series : sync_sample list;
  per_board : Campaign.outcome array;
  dead_boards : int;
}

(* Board 0 keeps the campaign seed so a one-board farm is the campaign;
   the other shards derive statistically independent streams. *)
let board_seed base i =
  if i = 0 then base
  else Rng.next64 (Rng.create (Int64.add base (Int64.mul (Int64.of_int i) 0x9E3779B97F4A7C15L)))

(* The total payload budget split round-robin: the first (total mod
   boards) shards carry the remainder. *)
let shard_iterations ~total ~boards i =
  (total / boards) + (if i < total mod boards then 1 else 0)

(* Each board's probe glitches on its own schedule: derive an
   independent fault-injector seed per board (board 0 keeps the base
   seed, mirroring {!board_seed}). *)
let board_fault_seed base i =
  if i = 0 then base
  else Rng.next64 (Rng.create (Int64.add base (Int64.mul (Int64.of_int i) 0xD1B54A32D192ED03L)))

(* --- shared (host-side) campaign state --------------------------------- *)

type shared = {
  fb : Feedback.t;  (* global coverage: the union of every shard's map *)
  corpus : Corpus.t;  (* the cross-board corpus shards pollinate through *)
  crash_keys : (string, unit) Hashtbl.t;
  mutable crashes_rev : Crash.t list;  (* reverse global discovery order *)
  mutable executed_synced : int;  (* payloads covered by past merges *)
  mutable virtual_max : float;  (* farm clock high-water mark at merges *)
  mutable syncs : int;
  mutable series_rev : sync_sample list;
  obs : Obs.t;  (* farm-level handle: epoch-sync events, no board tag *)
}

let make_shared ?obs ~edge_capacity ~boards ~seed () =
  let obs = match obs with Some o -> o | None -> Obs.create () in
  let s =
    {
      fb = Feedback.create ~edge_capacity;
      (* Big enough that no shard's survivors are evicted from the global
         view; its rng is never used (the farm never [pick]s from it). *)
      corpus = Corpus.create ~capacity:(512 * boards) ~rng:(Rng.create seed) ();
      crash_keys = Hashtbl.create 64;
      crashes_rev = [];
      executed_synced = 0;
      virtual_max = 0.;
      syncs = 0;
      series_rev = [];
      obs;
    }
  in
  (* Farm-level events are timestamped by the merge high-water mark —
     deterministic under the cooperative backend. *)
  Obs.set_clock obs (fun () -> s.virtual_max);
  s

(* Merge one shard's discoveries into the global structures. Cheap by
   construction: the coverage merge is one bitmap union, the corpus
   merge rejects already-seen hashes in O(1) each, and crash dedup only
   walks the shard's (short, already per-board-deduplicated) list. *)
let merge_board shared st ~delta_executed =
  ignore (Feedback.union_into ~dst:shared.fb ~src:(Campaign.feedback st) : int);
  ignore (Corpus.merge shared.corpus (Campaign.corpus st) : int);
  List.iter
    (fun c ->
      let k = Crash.dedup_key c in
      if not (Hashtbl.mem shared.crash_keys k) then begin
        Hashtbl.replace shared.crash_keys k ();
        shared.crashes_rev <- c :: shared.crashes_rev
      end)
    (Campaign.crashes_so_far st);
  shared.executed_synced <- shared.executed_synced + delta_executed;
  shared.virtual_max <- Float.max shared.virtual_max (Campaign.virtual_s st)

let record_sample shared =
  shared.syncs <- shared.syncs + 1;
  let coverage = Feedback.covered shared.fb in
  if Obs.active shared.obs then
    Obs.emit shared.obs
      (Obs.Event.Epoch_sync
         { sync = shared.syncs; executed = shared.executed_synced; coverage });
  shared.series_rev <-
    {
      executed = shared.executed_synced;
      virtual_s = shared.virtual_max;
      coverage;
    }
    :: shared.series_rev

(* --- deterministic cooperative backend --------------------------------- *)

(* Round-robin by target CPU time: always step the board whose CPU
   clock is furthest behind (ties to the lowest index), which
   interleaves shards as N physical boards would interleave in real
   time — and with one board degenerates to the plain campaign loop.
   CPU time rather than full virtual time because the latter includes
   link latency, which only exists on the link backend: keying on it
   would make the interleaving backend-dependent and break the
   differential oracle's farm equality. *)
let run_cooperative config shared states =
  let n = Array.length states in
  let last_exec = Array.make n 0 in
  let epoch () =
    Array.iteri
      (fun i st ->
        let e = Campaign.executed_programs_so_far st in
        merge_board shared st ~delta_executed:(e - last_exec.(i));
        last_exec.(i) <- e)
      states;
    (* Cross-pollination: pull the fleet's merged discoveries back into
       every shard. Skipped for a single board — there is nothing to
       exchange, and skipping keeps the one-board farm bit-identical to
       the plain campaign even across corpus evictions. *)
    if n > 1 then
      Array.iter
        (fun st -> ignore (Corpus.merge (Campaign.corpus st) shared.corpus : int))
        states;
    record_sample shared
  in
  let since = ref 0 in
  let running = ref true in
  while !running do
    let best = ref (-1) and best_t = ref infinity in
    for i = n - 1 downto 0 do
      if not (Campaign.finished states.(i)) then begin
        (* Key on CPU time, not full virtual time: link latency is
           backend-dependent, and the interleaving (hence epoch and
           cross-pollination order) must be identical for the link and
           native backends or the differential farm oracle can never
           hold. *)
        let t = Campaign.cpu_s states.(i) in
        if t <= !best_t then begin
          best := i;
          best_t := t
        end
      end
    done;
    if !best < 0 then running := false
    else begin
      let st = states.(!best) in
      let before = Campaign.executed_programs_so_far st in
      Campaign.step st;
      if Campaign.executed_programs_so_far st > before then incr since;
      if !since >= config.sync_every then begin
        epoch ();
        since := 0
      end
    end
  done;
  epoch ()

(* --- OCaml 5 Domain backend -------------------------------------------- *)

(* One domain per board; every shard-local structure is owned by its
   domain, and the only shared state is [shared], guarded by one mutex
   taken at epoch boundaries — contention is amortized over
   [sync_every] payloads of lock-free fuzzing. *)
let run_domains config shared states =
  let n = Array.length states in
  let lock = Mutex.create () in
  let worker st =
    let last = ref 0 in
    let sync () =
      Mutex.lock lock;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock lock)
        (fun () ->
          let e = Campaign.executed_programs_so_far st in
          merge_board shared st ~delta_executed:(e - !last);
          last := e;
          if n > 1 then
            ignore (Corpus.merge (Campaign.corpus st) shared.corpus : int);
          record_sample shared)
    in
    let since = ref 0 in
    while not (Campaign.finished st) do
      let before = Campaign.executed_programs_so_far st in
      Campaign.step st;
      if Campaign.executed_programs_so_far st > before then incr since;
      if !since >= config.sync_every then begin
        sync ();
        since := 0
      end
    done;
    sync ()
  in
  let domains =
    Array.map (fun st -> Domain.spawn (fun () -> try worker st with _ -> ())) states
  in
  Array.iter Domain.join domains

(* --- top level ---------------------------------------------------------- *)

let run ?obs ?inject_for (config : config) mk_build =
  if config.boards < 1 then Error (Eof_error.config "farm: boards must be >= 1")
  else if config.sync_every < 1 then Error (Eof_error.config "farm: sync_every must be >= 1")
  else if config.base.Campaign.backend = Machine.Native && config.base.Campaign.fault_rate > 0.
  then
    (* Reject before any board is built; Campaign.init repeats the check
       per board for machines supplied by other callers. *)
    Error
      (Eof_error.config
         "fault injection is link-only: the native backend has no link to fault")
  else begin
    let t0 = Unix.gettimeofday () in
    (* The fault schedule rides the fleet: each board gets its own
       independently seeded injector (or none at rate 0). Tests override
       [inject_for] to target specific boards. *)
    let inject_for =
      match inject_for with
      | Some f -> f
      | None ->
        fun i ->
          if config.base.fault_rate > 0. then
            Some
              {
                Inject.default_config with
                Inject.rate = config.base.fault_rate;
                seed = board_fault_seed config.base.fault_seed i;
              }
          else None
    in
    match
      Machine.create_fleet ?obs ~inject_for ~backend:config.base.Campaign.backend
        ~boards:config.boards mk_build
    with
    | Error e -> Error e
    | Ok fleet ->
      let edge_capacity = Osbuild.edge_capacity (fst fleet.(0)) in
      if Array.exists (fun (b, _) -> Osbuild.edge_capacity b <> edge_capacity) fleet
      then
        Error
          (Eof_error.config
             "farm: boards disagree on coverage-map capacity (different targets?)")
      else begin
        let rec init_all i acc =
          if i >= Array.length fleet then Ok (Array.of_list (List.rev acc))
          else begin
            let build, machine = fleet.(i) in
            let cfg =
              {
                config.base with
                seed = board_seed config.base.seed i;
                iterations =
                  shard_iterations ~total:config.base.iterations ~boards:config.boards i;
              }
            in
            let board_obs = Option.map (fun bus -> Obs.for_board bus i) obs in
            match Campaign.init ~machine ?obs:board_obs cfg build with
            | Ok st -> init_all (i + 1) (st :: acc)
            | Error e -> Error (Eof_error.with_context (Printf.sprintf "board %d" i) e)
          end
        in
        match init_all 0 [] with
        | Error e -> Error e
        | Ok states ->
          let shared =
            make_shared ?obs ~edge_capacity ~boards:config.boards
              ~seed:config.base.seed ()
          in
          (match config.backend with
           | Cooperative -> run_cooperative config shared states
           | Domains -> run_domains config shared states);
          let per_board = Array.map Campaign.finish states in
          (* The reported corpus is re-merged from the final shard
             corpora (shard order): unlike the exchange corpus it never
             contains seeds every shard has since evicted, and for one
             board it reproduces that board's corpus exactly. *)
          let final =
            Corpus.create ~capacity:(512 * config.boards)
              ~rng:(Rng.create config.base.seed) ()
          in
          Array.iter
            (fun st -> ignore (Corpus.merge final (Campaign.corpus st) : int))
            states;
          let sum f = Array.fold_left (fun a o -> a + f o) 0 per_board in
          Ok
            {
              boards = config.boards;
              backend = config.backend;
              coverage = Feedback.covered shared.fb;
              coverage_bitmap = Feedback.snapshot shared.fb;
              crashes = List.rev shared.crashes_rev;
              crash_events = sum (fun o -> o.Campaign.crash_events);
              executed_programs = sum (fun o -> o.Campaign.executed_programs);
              iterations_done = sum (fun o -> o.Campaign.iterations_done);
              corpus_size = Corpus.size final;
              final_corpus = Corpus.progs final;
              virtual_s =
                Array.fold_left
                  (fun a o -> Float.max a o.Campaign.virtual_s)
                  0. per_board;
              wall_s = Unix.gettimeofday () -. t0;
              syncs = shared.syncs;
              sync_series = List.rev shared.series_rev;
              per_board;
              dead_boards =
                Array.fold_left
                  (fun a st -> if Campaign.is_dead st then a + 1 else a)
                  0 states;
            }
      end
  end
