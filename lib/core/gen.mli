open Eof_spec

(** API-aware test-case generation and mutation.

    Generation builds call sequences from a validated specification,
    scoring candidates by resource dependencies: a call consuming a
    resource only becomes eligible once some earlier call produces it,
    and producers of still-missing kinds are boosted — the paper's
    "scoring call adjacency by resource dependencies". Argument values
    mix in-range uniforms with boundary values, special constants, and a
    dictionary of structure-bearing strings (JSON documents, HTTP
    requests, long names), because that is what drives deep handlers.

    [dep_aware:false] (ablation A2) drops the dependency logic: resource
    arguments get arbitrary earlier-call references (still well-typed at
    the wire level via position, but usually the wrong kind), so most
    calls bounce off precondition checks — the AFL-style failure mode the
    paper describes. *)

type t

type mode =
  | Interp  (** walk the spec on every argument, as always *)
  | Compiled
      (** generate through a compiled artifact: pre-resolved boundary and
          powers-of-two candidate sets per integer range, per-call
          required-resource-kind lists, and incremental producer tracking
          instead of per-argument prefix rescans. Memoized per
          (spec, table). Emits byte-identical programs to [Interp] for
          the same seed — only faster. *)

val mode_name : mode -> string

val mode_of_name : string -> (mode, string) result

val create :
  ?dep_aware:bool -> ?mode:mode -> rng:Eof_util.Rng.t -> spec:Ast.t ->
  table:Eof_rtos.Api.table -> unit -> t
(** [mode] defaults to [Interp]. *)

val mode : t -> mode

val dep_aware : t -> bool

val generate : t -> max_len:int -> Prog.t
(** A fresh program of 1..[max_len] calls. Always {!Prog.validate}-clean
    when [dep_aware] (otherwise resource refs may be kind-mismatched,
    deliberately). *)

val mutate : t -> Prog.t -> max_len:int -> Prog.t
(** One mutation step: tweak an argument, insert, delete, duplicate, or
    swap calls — with resource references remapped so the program stays
    structurally valid. *)

val mutate_focus : t -> Prog.t -> max_len:int -> Prog.t
(** Gradient-phase mutation: integer-argument tweaks/replays and call
    growth only (see the focused-exploitation phase in the campaign). *)

val add_int_hint : t -> int64 -> unit
(** Feed a harvested comparison operand (from the target's trace_cmp
    ring) into the generator's value dictionary — the input-to-state
    trick the paper's write_comp_data records enable. Deduplicated,
    bounded. *)

val hint_count : t -> int

val substitute : t -> Prog.t -> pairs:(int64 * int64) list -> Prog.t option
(** Input-to-state substitution: find an integer argument whose value
    appeared on one side of a recorded comparison and replace it with
    the other side (folded into 32 bits, as the ring stores them).
    [None] when no argument matches any pair. *)

val substitute_all : t -> Prog.t -> pairs:(int64 * int64) list -> Prog.t list
(** Every distinct input-to-state patch (constant and constant+1 per
    matching argument/comparison pair), for systematic enumeration. *)

val gen_value : t -> produced:(string -> int list) -> Ast.ty -> Prog.arg
(** Exposed for tests: generate one argument value. [produced kind]
    lists earlier positions producing [kind]. *)
