module Machine = Eof_agent.Machine
module Obs = Eof_obs.Obs
module Eof_error = Eof_util.Eof_error

type mismatch = { field : string; link : string; native : string }

type verdict = {
  label : string;
  link_digest : string;
  native_digest : string;
  equal : bool;
  mismatches : mismatch list;
  link_virtual_s : float;
  native_virtual_s : float;
  speedup_virtual : float;
}

let speedup ~link ~native = if native > 0. then link /. native else Float.infinity

(* Field-by-field comparison over the observable outcome — the digest
   alone says "diverged", the mismatch list says where. *)
let compare_fields fields =
  List.filter_map
    (fun (field, l, n) -> if String.equal l n then None else Some { field; link = l; native = n })
    fields

let crash_keys crashes =
  String.concat ";" (List.map Crash.dedup_key crashes)

let corpus_hashes progs =
  String.concat ";" (List.map (fun p -> string_of_int (Prog.hash p)) progs)

let verdict_of ~label ~link_digest ~native_digest ~mismatches ~link_virtual_s
    ~native_virtual_s =
  {
    label;
    link_digest;
    native_digest;
    equal = String.equal link_digest native_digest && mismatches = [];
    mismatches;
    link_virtual_s;
    native_virtual_s;
    speedup_virtual = speedup ~link:link_virtual_s ~native:native_virtual_s;
  }

let campaign_fields (l : Campaign.outcome) (n : Campaign.outcome) =
  [
    ("coverage", string_of_int l.Campaign.coverage, string_of_int n.Campaign.coverage);
    ("crashes", crash_keys l.Campaign.crashes, crash_keys n.Campaign.crashes);
    ( "crash_events",
      string_of_int l.Campaign.crash_events,
      string_of_int n.Campaign.crash_events );
    ( "executed_programs",
      string_of_int l.Campaign.executed_programs,
      string_of_int n.Campaign.executed_programs );
    ( "iterations_done",
      string_of_int l.Campaign.iterations_done,
      string_of_int n.Campaign.iterations_done );
    ("corpus", corpus_hashes l.Campaign.final_corpus, corpus_hashes n.Campaign.final_corpus);
    ("resets", string_of_int l.Campaign.resets, string_of_int n.Campaign.resets);
    ("reflashes", string_of_int l.Campaign.reflashes, string_of_int n.Campaign.reflashes);
    ("stalls", string_of_int l.Campaign.stalls, string_of_int n.Campaign.stalls);
  ]

let check_config (config : Campaign.config) =
  if config.Campaign.fault_rate > 0. then
    Error
      (Eof_error.config
         "differential mode needs a clean link: fault injection exists only on the \
          link backend, so a faulted link run has no native counterpart")
  else Ok ()

let ( let* ) = Result.bind

let run ?obs (config : Campaign.config) mk_build =
  let* () = check_config config in
  let* link =
    Result.map_error (Eof_error.with_context "link run")
      (Campaign.run ?obs { config with Campaign.backend = Machine.Link } (mk_build ()))
  in
  let* native =
    Result.map_error (Eof_error.with_context "native run")
      (Campaign.run ?obs { config with Campaign.backend = Machine.Native } (mk_build ()))
  in
  Ok
    (verdict_of ~label:"campaign"
       ~link_digest:(Report.campaign_digest link)
       ~native_digest:(Report.campaign_digest native)
       ~mismatches:(compare_fields (campaign_fields link native))
       ~link_virtual_s:link.Campaign.virtual_s
       ~native_virtual_s:native.Campaign.virtual_s)

let farm_fields (l : Farm.outcome) (n : Farm.outcome) =
  [
    ("coverage", string_of_int l.Farm.coverage, string_of_int n.Farm.coverage);
    ("crashes", crash_keys l.Farm.crashes, crash_keys n.Farm.crashes);
    ("crash_events", string_of_int l.Farm.crash_events, string_of_int n.Farm.crash_events);
    ( "executed_programs",
      string_of_int l.Farm.executed_programs,
      string_of_int n.Farm.executed_programs );
    ( "iterations_done",
      string_of_int l.Farm.iterations_done,
      string_of_int n.Farm.iterations_done );
    ("corpus", corpus_hashes l.Farm.final_corpus, corpus_hashes n.Farm.final_corpus);
    ("dead_boards", string_of_int l.Farm.dead_boards, string_of_int n.Farm.dead_boards);
  ]

let run_farm ?obs (config : Farm.config) mk_build =
  let* () = check_config config.Farm.base in
  let with_backend backend =
    { config with Farm.base = { config.Farm.base with Campaign.backend } }
  in
  let* link =
    Result.map_error (Eof_error.with_context "link run")
      (Farm.run ?obs (with_backend Machine.Link) mk_build)
  in
  let* native =
    Result.map_error (Eof_error.with_context "native run")
      (Farm.run ?obs (with_backend Machine.Native) mk_build)
  in
  Ok
    (verdict_of
       ~label:(Printf.sprintf "farm boards=%d" config.Farm.boards)
       ~link_digest:(Report.farm_digest link)
       ~native_digest:(Report.farm_digest native)
       ~mismatches:(compare_fields (farm_fields link native))
       ~link_virtual_s:link.Farm.virtual_s ~native_virtual_s:native.Farm.virtual_s)

let report v =
  let b = Buffer.create 512 in
  Buffer.add_string b
    (Printf.sprintf "differential %s: %s\n" v.label
       (if v.equal then "backends agree" else "BACKENDS DIVERGED"));
  Buffer.add_string b (Printf.sprintf "  link   %s\n" v.link_digest);
  Buffer.add_string b (Printf.sprintf "  native %s\n" v.native_digest);
  List.iter
    (fun m ->
      Buffer.add_string b
        (Printf.sprintf "  mismatch %s: link=%s native=%s\n" m.field m.link m.native))
    v.mismatches;
  Buffer.add_string b
    (Printf.sprintf "  virtual time: link %.3fs, native %.3fs (%.1fx)" v.link_virtual_s
       v.native_virtual_s v.speedup_virtual);
  Buffer.contents b
