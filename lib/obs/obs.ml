module Level = struct
  type t = Trace | Debug | Info | Warn | Error

  let severity = function
    | Trace -> 0
    | Debug -> 1
    | Info -> 2
    | Warn -> 3
    | Error -> 4

  let to_string = function
    | Trace -> "trace"
    | Debug -> "debug"
    | Info -> "info"
    | Warn -> "warn"
    | Error -> "error"

  let of_string s =
    match String.lowercase_ascii s with
    | "trace" -> Ok Trace
    | "debug" -> Ok Debug
    | "info" -> Ok Info
    | "warn" | "warning" -> Ok Warn
    | "error" -> Ok Error
    | other -> Error (Printf.sprintf "unknown log level %S (trace|debug|info|warn|error)" other)

  let at_least ~min l = severity l >= severity min
end

type value = V_int of int | V_float of float | V_str of string | V_bool of bool

module Event = struct
  type t =
    | Exchange of { tx : int; rx : int; timeout : bool }
    | Batch of { ops : int }
    | Stop of { kind : string; pc : int }
    | Flash_op of { op : string; addr : int; len : int }
    | Drain of { records : int; cmp : int; log_bytes : int; fused : bool }
    | Liveness_verdict of { verdict : string; pc : int }
    | Reflash_partition of { partition : string; bytes : int }
    | Restore_done of { partitions : int }
    | Snapshot_save of { pages : int }
    | Snapshot_restore of { dirty : int }
    | Reset_board
    | Payload of { iteration : int; status : string; new_edges : int }
    | Crash_found of { kind : string; operation : string }
    | Corpus_admit of { new_edges : int; size : int }
    | Seed_scheduled of { energy : int; frontier : bool }
    | Transplant_retyped of { from_os : string; to_os : string; kept : int; dropped : int }
    | Epoch_sync of { sync : int; executed : int; coverage : int }
    | Link_fault of { fault : string; exchange : int }
    | Recovery of { rung : string; attempt : int }
    | Worker_joined of { worker : int; name : string }
    | Worker_lost of { worker : int; leases : int }
    | Shard_reassigned of {
        campaign : int;
        shard : int;
        epoch : int;
        from_worker : int;
        to_worker : int;
      }
    | Lease_fenced of { campaign : int; shard : int; epoch : int; kind : string }
    | Journal_replay of { frames : int; campaigns : int; reset : int }
    | Span of { name : string; dur_us : float }
    | Message of { level : Level.t; text : string }

  let name = function
    | Exchange _ -> "exchange"
    | Batch _ -> "batch"
    | Stop _ -> "stop"
    | Flash_op _ -> "flash"
    | Drain _ -> "drain"
    | Liveness_verdict _ -> "liveness"
    | Reflash_partition _ -> "reflash"
    | Restore_done _ -> "restore"
    | Snapshot_save _ -> "snapshot-save"
    | Snapshot_restore _ -> "snapshot-restore"
    | Reset_board -> "reset"
    | Payload _ -> "payload"
    | Crash_found _ -> "crash"
    | Corpus_admit _ -> "corpus-admit"
    | Seed_scheduled _ -> "seed-scheduled"
    | Transplant_retyped _ -> "transplant-retyped"
    | Epoch_sync _ -> "epoch-sync"
    | Link_fault _ -> "link-fault"
    | Recovery _ -> "recovery"
    | Worker_joined _ -> "worker-joined"
    | Worker_lost _ -> "worker-lost"
    | Shard_reassigned _ -> "shard-reassigned"
    | Lease_fenced _ -> "lease-fenced"
    | Journal_replay _ -> "journal-replay"
    | Span _ -> "span"
    | Message _ -> "message"

  let level = function
    | Exchange _ | Batch _ -> Level.Trace
    | Stop _ | Flash_op _ | Drain _ | Span _ | Reset_board | Payload _ -> Level.Debug
    | Liveness_verdict { verdict; _ } ->
      (match verdict with
       | "pc-stalled" | "connection-lost" -> Level.Warn
       | _ -> Level.Trace)
    | Reflash_partition _ | Corpus_admit _ | Epoch_sync _ -> Level.Info
    | Seed_scheduled _ -> Level.Debug
    | Transplant_retyped _ -> Level.Info
    | Snapshot_save _ -> Level.Info
    | Snapshot_restore _ -> Level.Debug
    | Link_fault _ -> Level.Debug
    | Recovery _ -> Level.Warn
    | Worker_joined _ -> Level.Info
    | Worker_lost _ | Shard_reassigned _ | Lease_fenced _ -> Level.Warn
    | Journal_replay _ -> Level.Info
    | Restore_done _ | Crash_found _ -> Level.Warn
    | Message { level; _ } -> level

  let fields = function
    | Exchange { tx; rx; timeout } ->
      [ ("tx", V_int tx); ("rx", V_int rx); ("timeout", V_bool timeout) ]
    | Batch { ops } -> [ ("ops", V_int ops) ]
    | Stop { kind; pc } -> [ ("kind", V_str kind); ("pc", V_int pc) ]
    | Flash_op { op; addr; len } ->
      [ ("op", V_str op); ("addr", V_int addr); ("len", V_int len) ]
    | Drain { records; cmp; log_bytes; fused } ->
      [ ("records", V_int records); ("cmp", V_int cmp);
        ("log_bytes", V_int log_bytes); ("fused", V_bool fused) ]
    | Liveness_verdict { verdict; pc } ->
      [ ("verdict", V_str verdict); ("pc", V_int pc) ]
    | Reflash_partition { partition; bytes } ->
      [ ("partition", V_str partition); ("bytes", V_int bytes) ]
    | Restore_done { partitions } -> [ ("partitions", V_int partitions) ]
    | Snapshot_save { pages } -> [ ("pages", V_int pages) ]
    | Snapshot_restore { dirty } -> [ ("dirty", V_int dirty) ]
    | Reset_board -> []
    | Payload { iteration; status; new_edges } ->
      [ ("iteration", V_int iteration); ("status", V_str status);
        ("new_edges", V_int new_edges) ]
    | Crash_found { kind; operation } ->
      [ ("kind", V_str kind); ("operation", V_str operation) ]
    | Corpus_admit { new_edges; size } ->
      [ ("new_edges", V_int new_edges); ("size", V_int size) ]
    | Seed_scheduled { energy; frontier } ->
      [ ("energy", V_int energy); ("frontier", V_bool frontier) ]
    | Transplant_retyped { from_os; to_os; kept; dropped } ->
      [ ("from_os", V_str from_os); ("to_os", V_str to_os);
        ("kept", V_int kept); ("dropped", V_int dropped) ]
    | Epoch_sync { sync; executed; coverage } ->
      [ ("sync", V_int sync); ("executed", V_int executed); ("coverage", V_int coverage) ]
    | Link_fault { fault; exchange } ->
      [ ("fault", V_str fault); ("exchange", V_int exchange) ]
    | Recovery { rung; attempt } ->
      [ ("rung", V_str rung); ("attempt", V_int attempt) ]
    | Worker_joined { worker; name } ->
      [ ("worker", V_int worker); ("name", V_str name) ]
    | Worker_lost { worker; leases } ->
      [ ("worker", V_int worker); ("leases", V_int leases) ]
    | Shard_reassigned { campaign; shard; epoch; from_worker; to_worker } ->
      [ ("campaign", V_int campaign); ("shard", V_int shard);
        ("epoch", V_int epoch); ("from_worker", V_int from_worker);
        ("to_worker", V_int to_worker) ]
    | Lease_fenced { campaign; shard; epoch; kind } ->
      [ ("campaign", V_int campaign); ("shard", V_int shard);
        ("epoch", V_int epoch); ("kind", V_str kind) ]
    | Journal_replay { frames; campaigns; reset } ->
      [ ("frames", V_int frames); ("campaigns", V_int campaigns);
        ("reset", V_int reset) ]
    | Span { name; dur_us } -> [ ("name", V_str name); ("dur_us", V_float dur_us) ]
    | Message { level; text } ->
      [ ("level", V_str (Level.to_string level)); ("text", V_str text) ]
end

type sink = {
  min_level : Level.t;
  write : t:float -> board:int option -> tenant:string option -> Event.t -> unit;
}

(* The shared half of a bus: every handle derived with {!for_board}
   points at the same sinks and counters. The lock only matters under
   the farm's Domains backend, where several boards may emit
   concurrently; the cooperative/single-board paths never contend. *)
type core = {
  mutable sinks : sink list;
  mutable active : bool;
  counters : (string, int ref) Hashtbl.t;
  lock : Mutex.t;
}

type t = {
  core : core;
  board : int option;
  tenant : string option;
  mutable now : unit -> float;
}

let create () =
  {
    core = { sinks = []; active = false; counters = Hashtbl.create 32; lock = Mutex.create () };
    board = None;
    tenant = None;
    now = (fun () -> 0.);
  }

let for_board t board = { t with board = Some board }

let for_tenant t tenant = { t with tenant = Some tenant }

let board t = t.board

let tenant t = t.tenant

let set_clock t now = t.now <- now

let now t = t.now ()

let active t = t.core.active

let add_sink t sink =
  t.core.sinks <- t.core.sinks @ [ sink ];
  t.core.active <- true

let emit t ev =
  if t.core.active then begin
    let time = t.now () in
    Mutex.lock t.core.lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.core.lock)
      (fun () ->
        List.iter
          (fun sink ->
            if Level.at_least ~min:sink.min_level (Event.level ev) then
              sink.write ~t:time ~board:t.board ~tenant:t.tenant ev)
          t.core.sinks)
  end

let message t level text = emit t (Event.Message { level; text })

(* --- counters ---------------------------------------------------------- *)

module Counter = struct
  type bus = t

  type t = int ref

  let make (bus : bus) name =
    match Hashtbl.find_opt bus.core.counters name with
    | Some r -> r
    | None ->
      let r = ref 0 in
      Hashtbl.replace bus.core.counters name r;
      r

  let incr r = incr r

  let add r n = r := !r + n

  let value r = !r
end

let counter_value t name =
  match Hashtbl.find_opt t.core.counters name with Some r -> !r | None -> 0

let counters t =
  Hashtbl.fold (fun name r acc -> (name, !r) :: acc) t.core.counters []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* --- spans -------------------------------------------------------------- *)

type span = { span_name : string; t0 : float }

let span_begin t name = { span_name = name; t0 = t.now () }

let span_end t span =
  let dur_us = (t.now () -. span.t0) *. 1e6 in
  Counter.incr (Counter.make t ("span." ^ span.span_name ^ ".count"));
  Counter.add (Counter.make t ("span." ^ span.span_name ^ ".us"))
    (int_of_float dur_us);
  emit t (Event.Span { name = span.span_name; dur_us })

(* --- built-in sinks ----------------------------------------------------- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let value_to_json = function
  | V_int n -> string_of_int n
  | V_float f -> Printf.sprintf "%.3f" f
  | V_str s -> "\"" ^ json_escape s ^ "\""
  | V_bool b -> if b then "true" else "false"

let event_to_json ~t ~board ~tenant ev =
  let b = Buffer.create 128 in
  Buffer.add_string b (Printf.sprintf "{\"t\":%.6f" t);
  (match tenant with
   | Some name -> Buffer.add_string b (Printf.sprintf ",\"tenant\":\"%s\"" (json_escape name))
   | None -> ());
  (match board with
   | Some i -> Buffer.add_string b (Printf.sprintf ",\"board\":%d" i)
   | None -> ());
  Buffer.add_string b (Printf.sprintf ",\"ev\":\"%s\"" (Event.name ev));
  List.iter
    (fun (k, v) ->
      Buffer.add_string b (Printf.sprintf ",\"%s\":%s" k (value_to_json v)))
    (Event.fields ev);
  Buffer.add_char b '}';
  Buffer.contents b

let jsonl_sink ?(min_level = Level.Trace) oc =
  {
    min_level;
    write =
      (fun ~t ~board ~tenant ev ->
        output_string oc (event_to_json ~t ~board ~tenant ev);
        output_char oc '\n');
  }

let value_to_text = function
  | V_int n -> string_of_int n
  | V_float f -> Printf.sprintf "%.3f" f
  | V_str s -> s
  | V_bool b -> if b then "true" else "false"

let render_console ~t ~board ~tenant ev =
  let b = Buffer.create 96 in
  Buffer.add_string b
    (Printf.sprintf "eof[%-5s] %12.6f " (Level.to_string (Event.level ev)) t);
  (match tenant with
   | Some name -> Buffer.add_string b (name ^ " ")
   | None -> ());
  (match board with
   | Some i -> Buffer.add_string b (Printf.sprintf "b%d " i)
   | None -> ());
  (match ev with
   | Event.Message { text; _ } -> Buffer.add_string b text
   | ev ->
     Buffer.add_string b (Event.name ev);
     List.iter
       (fun (k, v) ->
         Buffer.add_char b ' ';
         Buffer.add_string b k;
         Buffer.add_char b '=';
         Buffer.add_string b (value_to_text v))
       (Event.fields ev));
  Buffer.contents b

let console_sink ?(min_level = Level.Info) ?(oc = stderr) () =
  {
    min_level;
    write =
      (fun ~t ~board ~tenant ev ->
        output_string oc (render_console ~t ~board ~tenant ev);
        output_char oc '\n';
        flush oc);
  }

let memory_sink ?(min_level = Level.Trace) () =
  let events = ref [] in
  ( { min_level; write = (fun ~t ~board ~tenant:_ ev -> events := (t, board, ev) :: !events) },
    fun () -> List.rev !events )

let sink ?(min_level = Level.Trace) write = { min_level; write }
