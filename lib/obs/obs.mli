(** The observability spine: one typed event bus shared by every layer of
    the execution stack.

    The host side of on-hardware fuzzing is a long-running control loop
    over a flaky debug link; what makes it debuggable is being able to
    {e see} what the stack is doing — exchanges, stops, drains, liveness
    verdicts, reflashes, epoch syncs. Every layer emits typed
    {!Event.t}s through a bus handle; pluggable {!sink}s render them
    (human console, JSONL trace file, in-memory for tests) and monotonic
    {!Counter}s accumulate totals that flow into [BENCH.json].

    {b Determinism.} Events are timestamped by the bus clock, which the
    machine layer binds to the board's {e virtual} time (CPU cycles +
    modelled link latency) — never the host wall clock. Under the
    cooperative farm backend the emission order is a pure function of
    the campaign seed, so two runs of the same command produce
    bit-identical JSONL traces ([cmp] clean).

    {b Cost.} A bus with no sinks is inert: {!emit} is one mutable-flag
    check, and counters are pre-resolved [int ref]s. Attaching a sink is
    what turns the firehose on. With no sink attached, campaign and farm
    outcomes are byte-identical to a build without any bus at all — this
    is a reporting plane, not a data plane. *)

module Level : sig
  type t = Trace | Debug | Info | Warn | Error

  val severity : t -> int

  val to_string : t -> string

  val of_string : string -> (t, string) result

  val at_least : min:t -> t -> bool
  (** [at_least ~min l] is true when [l] is at least as severe as [min]. *)
end

(** Flat field values: everything an event carries renders to one of
    these, which keeps the JSONL schema trivially parseable. *)
type value = V_int of int | V_float of float | V_str of string | V_bool of bool

module Event : sig
  type t =
    | Exchange of { tx : int; rx : int; timeout : bool }
        (** one transport round trip (request/response byte counts) *)
    | Batch of { ops : int }  (** a vBatch exchange carrying [ops] sub-ops *)
    | Stop of { kind : string; pc : int }
        (** target stop: ["breakpoint"], ["quantum"], ["fault"], ["exited"] *)
    | Flash_op of { op : string; addr : int; len : int }
        (** ["erase"] / ["write"] / ["done"] over the debug link *)
    | Drain of { records : int; cmp : int; log_bytes : int; fused : bool }
        (** one coverage/cmp/UART drain; [fused] = rode a continue *)
    | Liveness_verdict of { verdict : string; pc : int }
        (** watchdog outcome; [pc] is -1 when not applicable *)
    | Reflash_partition of { partition : string; bytes : int }
    | Restore_done of { partitions : int }  (** Algorithm 1 completed *)
    | Snapshot_save of { pages : int }
        (** copy-on-write snapshot captured; [pages] = device pages covered *)
    | Snapshot_restore of { dirty : int }
        (** snapshot restored; [dirty] = pages actually copied back *)
    | Reset_board
    | Payload of { iteration : int; status : string; new_edges : int }
        (** one campaign payload: ["completed"] / ["crashed"] /
            ["rejected"] / ["aborted"] *)
    | Crash_found of { kind : string; operation : string }
    | Corpus_admit of { new_edges : int; size : int }
    | Seed_scheduled of { energy : int; frontier : bool }
        (** the energy schedule granted a seed a multi-mutation budget
            (emitted only under [--schedule energy]) *)
    | Transplant_retyped of {
        from_os : string;
        to_os : string;
        kept : int;
        dropped : int;
      }
        (** the hub retyped a seed across personalities before adoption *)
    | Epoch_sync of { sync : int; executed : int; coverage : int }
        (** farm epoch merge *)
    | Link_fault of { fault : string; exchange : int }
        (** the injector mangled/dropped this exchange: ["drop"],
            ["timeout"], ["truncate"], ["nak-storm"], ["garbage"] *)
    | Recovery of { rung : string; attempt : int }
        (** one step of the link-recovery escalation ladder: ["retry"],
            ["resync"], ["reset"], ["reflash"], ["dead"] *)
    | Worker_joined of { worker : int; name : string }
        (** a worker endpoint registered with the hub *)
    | Worker_lost of { worker : int; leases : int }
        (** the hub declared a worker dead (EOF or heartbeat deadline);
            [leases] shards were revoked for reassignment *)
    | Shard_reassigned of {
        campaign : int;
        shard : int;
        epoch : int;  (** the new lease epoch *)
        from_worker : int;
        to_worker : int;
      }  (** a revoked shard lease moved to a surviving worker *)
    | Lease_fenced of { campaign : int; shard : int; epoch : int; kind : string }
        (** a message carrying a stale lease epoch was dropped;
            [kind] is the message kind name *)
    | Journal_replay of { frames : int; campaigns : int; reset : int }
        (** a restarted hub replayed its journal: [campaigns] restored,
            of which [reset] were unfinished and restarted from scratch *)
    | Span of { name : string; dur_us : float }
    | Message of { level : Level.t; text : string }

  val name : t -> string
  (** Stable kebab-case tag, the JSONL ["ev"] field. *)

  val level : t -> Level.t

  val fields : t -> (string * value) list
  (** Flat payload in a fixed, stable order. *)
end

type t
(** A bus handle: shared sinks/counters plus a per-handle board tag and
    clock. Handles are cheap; derive one per board with {!for_board}. *)

type sink

val create : unit -> t
(** A fresh, inert bus (no sinks, clock stuck at 0). *)

val for_board : t -> int -> t
(** A handle that stamps every event with a board index. Shares sinks
    and counters with the parent but carries its own clock, so each
    board's events are timestamped by that board's virtual time. *)

val for_tenant : t -> string -> t
(** A handle that stamps every event with a tenant id — the hub derives
    one per campaign so a shared fleet bus can be demultiplexed into
    per-tenant traces. Shares sinks and counters with the parent;
    composes with {!for_board} (tenant first, then board). *)

val board : t -> int option

val tenant : t -> string option

val set_clock : t -> (unit -> float) -> unit
(** Bind this handle's timestamp source (virtual seconds). The machine
    layer calls this with the board's virtual-time function. *)

val now : t -> float

val active : t -> bool
(** True once any sink is attached — emission sites use this to skip
    event construction entirely on the null path. *)

val add_sink : t -> sink -> unit

val emit : t -> Event.t -> unit
(** No-op (one flag check) when no sink is attached. Thread-safe: sink
    dispatch is serialized through an internal mutex for the farm's
    Domains backend. *)

val message : t -> Level.t -> string -> unit

module Counter : sig
  type bus = t

  type t
  (** A pre-resolved monotonic counter: increments are one [int ref]
      bump, no hash lookup on the hot path. *)

  val make : bus -> string -> t
  (** Find-or-create the named counter. Handles made from the same name
      on the same bus alias the same count. *)

  val incr : t -> unit

  val add : t -> int -> unit

  val value : t -> int
end

val counter_value : t -> string -> int
(** 0 when the counter was never created. *)

val counters : t -> (string * int) list
(** Snapshot of every counter, sorted by name (deterministic). *)

(** {2 Spans}

    A span measures the virtual time between {!span_begin} and
    {!span_end}; ending it emits a {!Event.Span} and accumulates
    [span.<name>.count] / [span.<name>.us] counters. *)

type span

val span_begin : t -> string -> span

val span_end : t -> span -> unit

(** {2 Sinks} *)

val console_sink : ?min_level:Level.t -> ?oc:out_channel -> unit -> sink
(** Human-readable lines, default to [stderr] at [Info] — log output
    never pollutes result stdout (digest lines stay [cmp]-clean). *)

val jsonl_sink : ?min_level:Level.t -> out_channel -> sink
(** One JSON object per event, every level by default. The flat schema
    is parsed back by {!Trace}. *)

val memory_sink :
  ?min_level:Level.t -> unit -> sink * (unit -> (float * int option * Event.t) list)
(** For tests: the closure returns every event seen so far in order. *)

val sink :
  ?min_level:Level.t ->
  (t:float -> board:int option -> tenant:string option -> Event.t -> unit) ->
  sink
(** A custom sink from a bare function. *)

val event_to_json : t:float -> board:int option -> tenant:string option -> Event.t -> string
(** The exact line {!jsonl_sink} writes (without the newline). *)
