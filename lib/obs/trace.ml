(* Reader side of the JSONL trace format: a hand-rolled parser for the
   exact flat-object grammar the jsonl sink writes (numbers, strings,
   booleans — no nesting), so the obs library needs no JSON dependency. *)

type line = {
  t : float;
  board : int option;
  tenant : string option;
  ev : string;
  fields : (string * Obs.value) list;
}

(* --- flat JSON object parsing ------------------------------------------ *)

exception Bad of string

let parse_object s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while !pos < n && (s.[!pos] = ' ' || s.[!pos] = '\t') do incr pos done
  in
  let expect c =
    skip_ws ();
    if !pos < n && s.[!pos] = c then incr pos
    else raise (Bad (Printf.sprintf "expected %C at %d" c !pos))
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then raise (Bad "unterminated string");
      match s.[!pos] with
      | '"' -> incr pos
      | '\\' ->
        incr pos;
        if !pos >= n then raise (Bad "dangling escape");
        (match s.[!pos] with
         | '"' -> Buffer.add_char b '"'
         | '\\' -> Buffer.add_char b '\\'
         | 'n' -> Buffer.add_char b '\n'
         | 'r' -> Buffer.add_char b '\r'
         | 't' -> Buffer.add_char b '\t'
         | 'u' ->
           if !pos + 4 >= n then raise (Bad "short \\u escape");
           let hex = String.sub s (!pos + 1) 4 in
           (match int_of_string_opt ("0x" ^ hex) with
            | Some code when code < 0x80 -> Buffer.add_char b (Char.chr code)
            | Some _ -> Buffer.add_char b '?'
            | None -> raise (Bad ("bad \\u escape " ^ hex)));
           pos := !pos + 4
         | c -> raise (Bad (Printf.sprintf "unknown escape \\%c" c)));
        incr pos;
        go ()
      | c ->
        Buffer.add_char b c;
        incr pos;
        go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> Obs.V_str (parse_string ())
    | Some 't' ->
      if !pos + 4 <= n && String.sub s !pos 4 = "true" then begin
        pos := !pos + 4;
        Obs.V_bool true
      end
      else raise (Bad "bad literal")
    | Some 'f' ->
      if !pos + 5 <= n && String.sub s !pos 5 = "false" then begin
        pos := !pos + 5;
        Obs.V_bool false
      end
      else raise (Bad "bad literal")
    | Some c when c = '-' || (c >= '0' && c <= '9') ->
      let start = !pos in
      let is_float = ref false in
      while
        !pos < n
        && (match s.[!pos] with
            | '0' .. '9' | '-' | '+' -> true
            | '.' | 'e' | 'E' ->
              is_float := true;
              true
            | _ -> false)
      do
        incr pos
      done;
      let tok = String.sub s start (!pos - start) in
      if !is_float then
        (match float_of_string_opt tok with
         | Some f -> Obs.V_float f
         | None -> raise (Bad ("bad number " ^ tok)))
      else
        (match int_of_string_opt tok with
         | Some i -> Obs.V_int i
         | None -> raise (Bad ("bad number " ^ tok)))
    | _ -> raise (Bad (Printf.sprintf "unexpected value at %d" !pos))
  in
  expect '{';
  let fields = ref [] in
  skip_ws ();
  if peek () = Some '}' then incr pos
  else begin
    let rec members () =
      let key = (skip_ws (); parse_string ()) in
      expect ':';
      let v = parse_value () in
      fields := (key, v) :: !fields;
      skip_ws ();
      match peek () with
      | Some ',' ->
        incr pos;
        members ()
      | Some '}' -> incr pos
      | _ -> raise (Bad "expected , or }")
    in
    members ()
  end;
  skip_ws ();
  if !pos <> n then raise (Bad "trailing bytes");
  List.rev !fields

let parse_line s =
  match parse_object s with
  | exception Bad e -> Error e
  | fields ->
    let t =
      match List.assoc_opt "t" fields with
      | Some (Obs.V_float f) -> f
      | Some (Obs.V_int i) -> float_of_int i
      | _ -> raise_notrace Exit
    in
    let board =
      match List.assoc_opt "board" fields with
      | Some (Obs.V_int i) -> Some i
      | _ -> None
    in
    let tenant =
      match List.assoc_opt "tenant" fields with
      | Some (Obs.V_str s) -> Some s
      | _ -> None
    in
    let ev =
      match List.assoc_opt "ev" fields with Some (Obs.V_str s) -> s | _ -> ""
    in
    if ev = "" then Error "line has no \"ev\" field"
    else
      Ok
        {
          t;
          board;
          tenant;
          ev;
          fields =
            List.filter
              (fun (k, _) -> k <> "t" && k <> "board" && k <> "tenant" && k <> "ev")
              fields;
        }

let parse_line s =
  match parse_line s with exception Exit -> Error "line has no \"t\" field" | r -> r

(* --- summarization ------------------------------------------------------ *)

type summary = {
  events : int;
  bad_lines : int;
  boards : int;
  t_last : float;
  by_event : (string * int) list;
  exchanges : int;
  timeouts : int;
  bytes_tx : int;
  bytes_rx : int;
  batches : int;
  batch_ops : int;
  payloads : int;
  crashes : int;
  corpus_admits : int;
  new_edges : int;
  coverage_final : int option;
  spans : (string * int * float) list;
  growth : (float * int) list;
}

let int_field line key =
  match List.assoc_opt key line.fields with Some (Obs.V_int i) -> i | _ -> 0

let float_field line key =
  match List.assoc_opt key line.fields with
  | Some (Obs.V_float f) -> f
  | Some (Obs.V_int i) -> float_of_int i
  | _ -> 0.

let str_field line key =
  match List.assoc_opt key line.fields with Some (Obs.V_str s) -> s | _ -> ""

let bool_field line key =
  match List.assoc_opt key line.fields with Some (Obs.V_bool b) -> b | _ -> false

let summarize lines =
  let events = ref 0 and bad = ref 0 in
  let boards = Hashtbl.create 8 in
  let t_last = ref 0. in
  let by_event = Hashtbl.create 16 in
  let exchanges = ref 0 and timeouts = ref 0 in
  let bytes_tx = ref 0 and bytes_rx = ref 0 in
  let batches = ref 0 and batch_ops = ref 0 in
  let payloads = ref 0 and crashes = ref 0 in
  let corpus_admits = ref 0 and new_edges = ref 0 in
  let coverage_final = ref None in
  let spans = Hashtbl.create 16 in
  let growth = ref [] in
  Seq.iter
    (fun raw ->
      let raw = String.trim raw in
      if raw <> "" then
        match parse_line raw with
        | Error _ -> incr bad
        | Ok line ->
          incr events;
          (match line.board with Some b -> Hashtbl.replace boards b () | None -> ());
          if line.t > !t_last then t_last := line.t;
          (let r =
             match Hashtbl.find_opt by_event line.ev with
             | Some r -> r
             | None ->
               let r = ref 0 in
               Hashtbl.replace by_event line.ev r;
               r
           in
           incr r);
          (match line.ev with
           | "exchange" ->
             incr exchanges;
             if bool_field line "timeout" then incr timeouts;
             bytes_tx := !bytes_tx + int_field line "tx";
             bytes_rx := !bytes_rx + int_field line "rx"
           | "batch" ->
             incr batches;
             batch_ops := !batch_ops + int_field line "ops"
           | "payload" ->
             incr payloads;
             let edges = int_field line "new_edges" in
             if edges > 0 then begin
               new_edges := !new_edges + edges;
               growth := (line.t, !new_edges) :: !growth
             end
           | "crash" -> incr crashes
           | "corpus-admit" -> incr corpus_admits
           | "epoch-sync" -> coverage_final := Some (int_field line "coverage")
           | "span" ->
             let name = str_field line "name" in
             let count, total =
               match Hashtbl.find_opt spans name with
               | Some ct -> ct
               | None ->
                 let ct = (ref 0, ref 0.) in
                 Hashtbl.replace spans name ct;
                 ct
             in
             incr count;
             total := !total +. float_field line "dur_us"
           | _ -> ()))
    lines;
  {
    events = !events;
    bad_lines = !bad;
    boards = Hashtbl.length boards;
    t_last = !t_last;
    by_event =
      Hashtbl.fold (fun k r acc -> (k, !r) :: acc) by_event []
      |> List.sort (fun (a, _) (b, _) -> compare a b);
    exchanges = !exchanges;
    timeouts = !timeouts;
    bytes_tx = !bytes_tx;
    bytes_rx = !bytes_rx;
    batches = !batches;
    batch_ops = !batch_ops;
    payloads = !payloads;
    crashes = !crashes;
    corpus_admits = !corpus_admits;
    new_edges = !new_edges;
    coverage_final = !coverage_final;
    spans =
      Hashtbl.fold (fun k (c, t) acc -> (k, !c, !t) :: acc) spans []
      |> List.sort (fun (a, _, _) (b, _, _) -> compare a b);
    growth = List.rev !growth;
  }

let of_channel ic =
  let rec seq () =
    match input_line ic with
    | line -> Seq.Cons (line, seq)
    | exception End_of_file -> Seq.Nil
  in
  summarize seq

let of_file path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> of_channel ic)

(* --- rendering ----------------------------------------------------------- *)

let render s =
  let module T = Eof_util.Text_table in
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf
       "trace: %d events%s over %.3f virtual s%s\n"
       s.events
       (if s.bad_lines > 0 then Printf.sprintf " (%d unparseable lines)" s.bad_lines
        else "")
       s.t_last
       (if s.boards > 1 then Printf.sprintf " across %d boards" s.boards else ""));
  Buffer.add_string b "\nevent counts:\n";
  Buffer.add_string b
    (T.render
       ~align:[ T.Left; T.Right ]
       ~header:[ "event"; "count" ]
       (List.map (fun (k, n) -> [ k; string_of_int n ]) s.by_event));
  if s.exchanges > 0 then begin
    Buffer.add_string b "\nlink:\n";
    Buffer.add_string b
      (T.render
         ~align:[ T.Left; T.Right ]
         ~header:[ "metric"; "value" ]
         ([ [ "exchanges"; string_of_int s.exchanges ];
            [ "timeouts"; string_of_int s.timeouts ];
            [ "bytes out"; string_of_int s.bytes_tx ];
            [ "bytes in"; string_of_int s.bytes_rx ] ]
         @ (if s.batches > 0 then
              [ [ "vBatch exchanges"; string_of_int s.batches ];
                [ "vBatch sub-ops"; string_of_int s.batch_ops ] ]
            else [])
         @
         if s.payloads > 0 then
           [ [ "exchanges/payload";
               Printf.sprintf "%.2f" (float_of_int s.exchanges /. float_of_int s.payloads) ] ]
         else []))
  end;
  if s.spans <> [] then begin
    Buffer.add_string b "\ntime per phase (span totals):\n";
    let total_us = s.t_last *. 1e6 in
    Buffer.add_string b
      (T.render
         ~align:[ T.Left; T.Right; T.Right; T.Right; T.Right ]
         ~header:[ "span"; "count"; "total ms"; "avg us"; "% of trace" ]
         (List.map
            (fun (name, count, us) ->
              [ name;
                string_of_int count;
                Printf.sprintf "%.2f" (us /. 1e3);
                Printf.sprintf "%.1f" (us /. float_of_int (max 1 count));
                (if total_us > 0. then Printf.sprintf "%.1f" (100. *. us /. total_us)
                 else "n/a") ])
            s.spans))
  end;
  if s.payloads > 0 then
    Buffer.add_string b
      (Printf.sprintf "\npayloads: %d | crash events: %d | corpus admissions: %d\n"
         s.payloads s.crashes s.corpus_admits);
  (match (s.growth, s.coverage_final) with
   | [], None -> ()
   | growth, cov ->
     Buffer.add_string b "\ncoverage growth (cumulative new edges at payload events):\n";
     let n = List.length growth in
     let step = max 1 (n / 10) in
     let sampled =
       List.filteri (fun i _ -> i mod step = 0 || i = n - 1) growth
     in
     Buffer.add_string b
       (T.render
          ~align:[ T.Right; T.Right ]
          ~header:[ "virtual s"; "edges" ]
          (List.map
             (fun (t, e) -> [ Printf.sprintf "%.3f" t; string_of_int e ])
             sampled));
     (match cov with
      | Some c ->
        Buffer.add_string b
          (Printf.sprintf "final global coverage at last epoch sync: %d edges\n" c)
      | None -> ()));
  if Buffer.length b > 0 && Buffer.nth b (Buffer.length b - 1) <> '\n' then
    Buffer.add_char b '\n';
  Buffer.contents b
