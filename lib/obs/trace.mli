(** Reader side of the JSONL trace format written by {!Obs.jsonl_sink}.

    The writer emits flat JSON objects (numbers, strings, booleans — no
    nesting), so a minimal hand-rolled parser suffices and the obs
    library stays dependency-free. [eof trace FILE] uses this module to
    turn a trace into a campaign post-mortem: time-per-phase breakdown,
    exchange totals, coverage growth. *)

type line = {
  t : float;  (** virtual timestamp (seconds) *)
  board : int option;
  tenant : string option;  (** hub campaigns tag events per tenant *)
  ev : string;  (** event tag, e.g. ["exchange"], ["payload"] *)
  fields : (string * Obs.value) list;  (** remaining payload, in file order *)
}

val parse_line : string -> (line, string) result
(** Parse one JSONL line. Errors on malformed JSON, a missing ["t"], or
    a missing ["ev"] field. *)

type summary = {
  events : int;
  bad_lines : int;  (** lines that failed to parse (skipped) *)
  boards : int;  (** distinct board tags seen (0 for single-board traces) *)
  t_last : float;  (** largest timestamp = virtual duration of the trace *)
  by_event : (string * int) list;  (** event-tag counts, sorted by tag *)
  exchanges : int;
  timeouts : int;
  bytes_tx : int;
  bytes_rx : int;
  batches : int;  (** vBatch exchanges *)
  batch_ops : int;  (** sub-ops carried by vBatch exchanges *)
  payloads : int;
  crashes : int;
  corpus_admits : int;
  new_edges : int;  (** sum of per-payload new edges *)
  coverage_final : int option;  (** global coverage at the last epoch sync *)
  spans : (string * int * float) list;  (** name, count, total microseconds *)
  growth : (float * int) list;
      (** (timestamp, cumulative new edges) at each edge-finding payload *)
}

val summarize : string Seq.t -> summary
(** Summarize a sequence of raw JSONL lines; unparseable lines are
    counted in [bad_lines], not fatal. *)

val of_channel : in_channel -> summary

val of_file : string -> summary
(** Raises [Sys_error] when the file cannot be opened. *)

val render : summary -> string
(** Human-readable report ([eof trace] output). *)
