(* The eof command-line tool: fuzz a target, inspect specifications,
   list targets, or regenerate a single paper artifact. *)

open Cmdliner
module Obs = Eof_obs.Obs
module Campaign = Eof_core.Campaign
module Crash = Eof_core.Crash
module Targets = Eof_expt.Targets
module Runner = Eof_expt.Runner

let os_arg =
  let doc = "Target OS: FreeRTOS, RT-Thread, NuttX, Zephyr or PoKOS." in
  Arg.(value & opt string "Zephyr" & info [ "os" ] ~docv:"OS" ~doc)

let seed_arg =
  let doc = "Campaign seed." in
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc)

let iterations_arg =
  let doc = "Payload budget (test cases to execute)." in
  Arg.(value & opt int 1000 & info [ "iterations"; "n" ] ~docv:"N" ~doc)

let target_of os =
  match Targets.find os with
  | Some t -> Ok t
  | None ->
    Error
      (Printf.sprintf "unknown OS %S (known: %s)" os
         (String.concat ", "
            (List.map (fun (t : Targets.hw_target) -> t.Targets.spec.Eof_os.Osbuild.os_name)
               Targets.all)))

(* --- eof fuzz ---------------------------------------------------------- *)

(* The digest lines (wall-clock-free result fingerprints) live in
   Report so the CLI, the differential oracle and the tests all print
   the same bits for the same outcome. *)
let campaign_digest = Eof_core.Report.campaign_digest
let farm_digest = Eof_core.Report.farm_digest

(* Which machinery executes payloads: one backend, or both with the
   differential oracle comparing them. *)
type exec_mode = Single of Eof_agent.Machine.backend | Differential

let exec_mode_of_name s =
  match String.lowercase_ascii s with
  | "diff" | "differential" -> Ok Differential
  | _ -> Result.map (fun b -> Single b) (Eof_agent.Machine.backend_of_name s)

(* "off" keeps the bus inert on the console side; a trace sink can still
   be attached independently. *)
let console_level_of_string s =
  match String.lowercase_ascii s with
  | "off" | "none" | "quiet" -> Ok None
  | s -> Result.map Option.some (Obs.Level.of_string s)

let fuzz os seed iterations boards sync_every exec_backend farm_backend digest
    no_feedback no_dep no_watchdog irq verbose crash_dir save_corpus load_corpus
    log_level trace_file fault_rate fault_seed reset_policy schedule gen_mode =
  match
    (target_of os, Eof_core.Farm.backend_of_name farm_backend,
     console_level_of_string log_level, exec_mode_of_name exec_backend,
     Campaign.reset_policy_of_name reset_policy,
     Eof_core.Corpus.schedule_of_name schedule, Eof_core.Gen.mode_of_name gen_mode)
  with
  | Error e, _, _, _, _, _, _
  | _, Error e, _, _, _, _, _
  | _, _, Error e, _, _, _, _
  | _, _, _, Error e, _, _, _
  | _, _, _, _, Error e, _, _
  | _, _, _, _, _, Error e, _
  | _, _, _, _, _, _, Error e ->
    prerr_endline e;
    1
  | _ when not (fault_rate >= 0. && fault_rate <= 1.) ->
    prerr_endline "eof fuzz: --fault-rate must be within [0, 1]";
    1
  | ( Ok target, Ok backend, Ok console_level, Ok exec_mode, Ok reset_policy,
      Ok schedule, Ok gen_mode ) ->
    let obs = Obs.create () in
    (match console_level with
     | Some min_level -> Obs.add_sink obs (Obs.console_sink ~min_level ())
     | None -> ());
    let trace_oc =
      match trace_file with
      | None -> None
      | Some path ->
        let oc = open_out path in
        Obs.add_sink obs (Obs.jsonl_sink oc);
        Some oc
    in
    Fun.protect ~finally:(fun () -> Option.iter close_out trace_oc) @@ fun () ->
    let build = Targets.build_hw target in
    let profile = Eof_hw.Board.profile (Eof_os.Osbuild.board build) in
    Obs.message obs Obs.Level.Info
      (Printf.sprintf
         "fuzzing %s %s on %s %s (%d payloads, seed %d%s)"
         (Eof_os.Osbuild.os_name build) (Eof_os.Osbuild.version build)
         profile.Eof_hw.Board.name
         (match exec_mode with
          | Single Eof_agent.Machine.Link | Differential ->
            Printf.sprintf "over its %s debug port%s"
              (Eof_hw.Board.debug_port_name profile.Eof_hw.Board.debug_port)
              (match exec_mode with
               | Differential -> " + in-process (differential)"
               | _ -> "")
          | Single Eof_agent.Machine.Native -> "in-process (native backend)")
         iterations seed
         (if boards = 1 then ""
          else
            Printf.sprintf ", %d boards, %s backend" boards
              (Eof_core.Farm.backend_name backend)));
    let table = Eof_os.Osbuild.api_signatures build in
    let initial_seeds =
      match load_corpus with
      | None -> []
      | Some path ->
        (match Eof_spec.Synth.validated_of_api table with
         | Error _ -> []
         | Ok spec ->
           (match Eof_core.Corpus_io.load ~path ~spec ~table with
            | Ok (progs, skipped) ->
              Obs.message obs Obs.Level.Info
                (Printf.sprintf "loaded %d corpus seeds from %s (%d stale entries skipped)"
                   (List.length progs) path skipped);
              progs
            | Error e ->
              prerr_endline ("could not load corpus: " ^ e);
              []))
    in
    let config =
      {
        Campaign.default_config with
        seed = Int64.of_int seed;
        iterations;
        backend =
          (match exec_mode with
           | Single b -> b
           (* Diff.run overrides the backend for each of its two runs. *)
           | Differential -> Eof_agent.Machine.Link);
        feedback = not no_feedback;
        dep_aware = not no_dep;
        stall_watchdog = not no_watchdog;
        irq_injection = irq;
        initial_seeds;
        fault_rate;
        fault_seed = Int64.of_int fault_seed;
        reset_policy;
        schedule;
        gen_mode;
      }
    in
    if fault_rate > 0. then
      Obs.message obs Obs.Level.Info
        (Printf.sprintf "link-fault injection on: rate %g, seed %d" fault_rate
           fault_seed);
    let print_crashes crashes crash_events =
      Printf.printf "crashes: %d distinct (%d events)\n\n" (List.length crashes)
        crash_events;
      List.iter
        (fun crash ->
          print_endline ("  " ^ Crash.summary crash);
          (match Targets.match_bug crash with
           | Some bug ->
             Printf.printf "    -> Table 2 bug #%d (%s)\n" bug.Targets.id
               bug.Targets.operation
           | None -> ());
          if verbose then begin
            print_endline "    triggering program:";
            String.split_on_char '\n' crash.Crash.program
            |> List.iter (fun l -> print_endline ("      " ^ l))
          end)
        crashes
    in
    let save_outputs crashes final_corpus =
      (match crash_dir with
       | None -> ()
       | Some dir ->
         (match Eof_core.Report.save_crashes ~dir crashes with
          | Ok paths ->
            Printf.printf "\nwrote %d crash reports under %s\n" (List.length paths) dir
          | Error e -> prerr_endline ("could not write crash reports: " ^ e)));
      match save_corpus with
      | None -> ()
      | Some path ->
        (match Eof_core.Corpus_io.save ~path final_corpus with
         | Ok () ->
           Printf.printf "saved %d corpus seeds to %s\n" (List.length final_corpus) path
         | Error e -> prerr_endline ("could not save corpus: " ^ e))
    in
    match exec_mode with
    | Differential ->
      (* Run both backends on the same seed schedule and compare every
         observable: any divergence is a bug in one of them. *)
      let module Diff = Eof_core.Diff in
      let verdict =
        if boards = 1 then Diff.run ~obs config (fun () -> Targets.build_hw target)
        else
          let module Farm = Eof_core.Farm in
          Diff.run_farm ~obs
            { Farm.boards; sync_every; backend; base = config }
            (fun _board -> Targets.build_hw target)
      in
      (match verdict with
       | Error e ->
         prerr_endline ("differential campaign failed: " ^ Eof_util.Eof_error.to_string e);
         1
       | Ok v ->
         print_endline (Diff.report v);
         if v.Diff.equal then 0 else 1)
    | Single _ ->
    if boards = 1 then (
      match Campaign.run ~obs config build with
      | Error e ->
        prerr_endline ("campaign failed: " ^ Eof_util.Eof_error.to_string e);
        1
      | Ok o ->
        if digest then (
          print_endline (campaign_digest o);
          0)
        else begin
          Printf.printf
            "\ncoverage: %d branches | executed: %d | corpus: %d | resets: %d | reflashes: %d | stalls: %d\n"
            o.Campaign.coverage o.Campaign.executed_programs o.Campaign.corpus_size
            o.Campaign.resets o.Campaign.reflashes o.Campaign.stalls;
          print_crashes o.Campaign.crashes o.Campaign.crash_events;
          save_outputs o.Campaign.crashes o.Campaign.final_corpus;
          0
        end)
    else begin
      let module Farm = Eof_core.Farm in
      let farm_config = { Farm.boards; sync_every; backend; base = config } in
      match Farm.run ~obs farm_config (fun _board -> Targets.build_hw target) with
      | Error e ->
        prerr_endline ("farm campaign failed: " ^ Eof_util.Eof_error.to_string e);
        1
      | Ok o ->
        if digest then (
          print_endline (farm_digest o);
          0)
        else begin
          Array.iteri
            (fun i (b : Campaign.outcome) ->
              Printf.printf
                "board %d: coverage %d | executed %d | crashes %d | board clock %.2f s\n"
                i b.Campaign.coverage b.Campaign.executed_programs
                (List.length b.Campaign.crashes) b.Campaign.virtual_s)
            o.Farm.per_board;
          Printf.printf
            "\nglobal coverage: %d branches | executed: %d | corpus: %d | syncs: %d | farm clock: %.2f s\n"
            o.Farm.coverage o.Farm.executed_programs o.Farm.corpus_size o.Farm.syncs
            o.Farm.virtual_s;
          print_crashes o.Farm.crashes o.Farm.crash_events;
          save_outputs o.Farm.crashes o.Farm.final_corpus;
          0
        end
    end

let fuzz_cmd =
  let boards =
    Arg.(value & opt int 1
         & info [ "boards" ] ~docv:"N"
             ~doc:"Shard the campaign across $(docv) boards (a board farm).")
  in
  let sync_every =
    Arg.(value & opt int 25
         & info [ "sync-every" ] ~docv:"K"
             ~doc:"Merge corpus/coverage across boards every $(docv) payloads.")
  in
  let exec_backend =
    Arg.(value & opt string "link"
         & info [ "backend" ] ~docv:"BACKEND"
             ~doc:"Execution backend: $(b,link) drives the agent over the simulated debug \
                   port (RSP framing, transport latency), $(b,native) runs agent and RTOS \
                   in-process with coverage drained by direct call (same results, no link \
                   cost), $(b,diff) runs both on the same seed schedule and fails if any \
                   observable differs.")
  in
  let farm_backend =
    Arg.(value & opt string "cooperative"
         & info [ "farm-backend" ] ~docv:"BACKEND"
             ~doc:"Farm scheduler: $(b,cooperative) (deterministic) or $(b,domains) (one OCaml domain per board).")
  in
  let digest =
    Arg.(value & flag
         & info [ "digest" ]
             ~doc:"Print only a deterministic one-line fingerprint of the results (no wall times); rerunning the same command must print the same line.")
  in
  let no_feedback =
    Arg.(value & flag & info [ "no-feedback" ] ~doc:"Disable coverage feedback (EOF-nf).")
  in
  let no_dep =
    Arg.(value & flag & info [ "no-dep" ] ~doc:"Disable dependency-aware generation.")
  in
  let no_watchdog =
    Arg.(value & flag & info [ "no-watchdog" ] ~doc:"Disable the PC-stall watchdog.")
  in
  let irq =
    Arg.(value & flag & info [ "irq" ] ~doc:"Inject GPIO edges (interrupt-path fuzzing).")
  in
  let verbose =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print triggering programs.")
  in
  let crash_dir =
    Arg.(value & opt (some string) None
         & info [ "crash-dir" ] ~docv:"DIR" ~doc:"Write one report file per distinct crash.")
  in
  let save_corpus =
    Arg.(value & opt (some string) None
         & info [ "save-corpus" ] ~docv:"FILE" ~doc:"Save the final corpus.")
  in
  let load_corpus =
    Arg.(value & opt (some string) None
         & info [ "load-corpus" ] ~docv:"FILE" ~doc:"Seed the corpus from a saved file.")
  in
  let log_level =
    Arg.(value & opt string "info"
         & info [ "log-level" ] ~docv:"LEVEL"
             ~doc:"Console telemetry on stderr at $(docv): $(b,trace), $(b,debug), $(b,info), $(b,warn), $(b,error), or $(b,off). Result output on stdout is unaffected.")
  in
  let trace =
    Arg.(value & opt (some string) None
         & info [ "trace" ] ~docv:"FILE"
             ~doc:"Write every telemetry event to $(docv) as JSONL, timestamped in virtual time. With the cooperative farm backend, rerunning the same command produces a byte-identical trace.")
  in
  let fault_rate =
    Arg.(value & opt float 0.
         & info [ "fault-rate" ] ~docv:"P"
             ~doc:"Deterministically inject debug-link faults (drops, truncations, NAK storms, timeouts, post-reset garbage): each exchange starts a fault burst with probability $(docv). 0 disables injection entirely; the link path is then byte-identical to a run without this flag.")
  in
  let fault_seed =
    Arg.(value & opt int (Int64.to_int Campaign.default_config.Campaign.fault_seed)
         & info [ "fault-seed" ] ~docv:"SEED"
             ~doc:"Seed for the fault injector's private RNG. Same seed, same rate, same command: same faults, same recoveries, same digest and trace. Each farm board derives its own independent schedule from $(docv).")
  in
  let reset_policy =
    Arg.(value & opt string "ladder"
         & info [ "reset-policy" ] ~docv:"POLICY"
             ~doc:"How the target gets back to pristine state: $(b,ladder) reflashes \
                   every partition from the golden image (the original escalation \
                   ladder), $(b,snapshot) arms a copy-on-write snapshot at install so \
                   the reflash rung restores only dirty pages, \
                   $(b,fresh-per-program) additionally rewinds to the pristine \
                   snapshot before every payload. Campaign outcomes are identical \
                   between $(b,ladder) and $(b,snapshot) on a fault-free link.")
  in
  let schedule =
    Arg.(value & opt string "uniform"
         & info [ "schedule" ] ~docv:"SCHED"
             ~doc:"Seed scheduling: $(b,uniform) (one mutation per corpus pick — the \
                   original behavior, byte-identical digests) or $(b,energy) \
                   (AFLFast-style power schedule: seeds on the campaign target's \
                   rare-edge frontier, first picks and crash finds earn \
                   exponentially larger mutation budgets).")
  in
  let gen_mode =
    Arg.(value & opt string "interp"
         & info [ "gen-mode" ] ~docv:"MODE"
             ~doc:"Generator engine: $(b,interp) walks the specification per \
                   argument; $(b,compiled) generates through pre-resolved candidate \
                   sets memoized per API table. Both emit byte-identical programs \
                   for the same seed — $(b,compiled) is purely faster.")
  in
  Cmd.v
    (Cmd.info "fuzz" ~doc:"Run an EOF campaign against a simulated board")
    Term.(
      const fuzz $ os_arg $ seed_arg $ iterations_arg $ boards $ sync_every
      $ exec_backend $ farm_backend $ digest $ no_feedback $ no_dep $ no_watchdog
      $ irq $ verbose $ crash_dir $ save_corpus $ load_corpus $ log_level $ trace
      $ fault_rate $ fault_seed $ reset_policy $ schedule $ gen_mode)

(* --- eof trace ---------------------------------------------------------- *)

let trace_summary file =
  match Eof_obs.Trace.of_file file with
  | summary ->
    print_string (Eof_obs.Trace.render summary);
    0
  | exception Sys_error e ->
    prerr_endline e;
    1

let trace_cmd =
  let file =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"FILE" ~doc:"A JSONL trace written by $(b,eof fuzz --trace).")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Summarize a JSONL telemetry trace (time per phase, link traffic, coverage growth)")
    Term.(const trace_summary $ file)

(* --- eof spec ----------------------------------------------------------- *)

let spec os =
  match target_of os with
  | Error e ->
    prerr_endline e;
    1
  | Ok target ->
    let build = Targets.build_hw target in
    let table = Eof_os.Osbuild.api_signatures build in
    print_string (Eof_spec.Synth.syzlang_of_api table);
    (match Eof_spec.Synth.validated_of_api table with
     | Ok _ ->
       prerr_endline "# specification parses and validates";
       0
     | Error e ->
       prerr_endline ("# INVALID: " ^ e);
       1)

let spec_cmd =
  Cmd.v
    (Cmd.info "spec" ~doc:"Print the synthesized Syzlang-style API specification")
    Term.(const spec $ os_arg)

(* --- eof targets ---------------------------------------------------------- *)

let targets () =
  List.iter
    (fun (t : Targets.hw_target) ->
      let os = t.Targets.spec.Eof_os.Osbuild.os_name in
      let bugs = List.filter (fun (b : Targets.bug) -> b.Targets.os = os) Targets.catalog in
      Printf.printf "%-10s %-10s on %-18s (%s, %d seeded bugs)\n" os
        t.Targets.spec.Eof_os.Osbuild.version t.Targets.board.Eof_hw.Board.name
        (Eof_hw.Arch.family_name t.Targets.board.Eof_hw.Board.arch.Eof_hw.Arch.family)
        (List.length bugs))
    Targets.all;
  0

let targets_cmd =
  Cmd.v (Cmd.info "targets" ~doc:"List evaluation targets") Term.(const targets $ const ())

(* --- eof artifact ----------------------------------------------------------- *)

let artifact name iterations =
  match name with
  | "table1" ->
    print_endline (Eof_expt.Table1.render ());
    0
  | "table2" | "table3" | "fig7" ->
    let cells = Runner.full_system_matrix ~iterations () in
    print_endline
      (match name with
       | "table2" -> Eof_expt.Table2.render cells
       | "table3" -> Eof_expt.Table3.render cells
       | _ -> Eof_expt.Fig7.render ~iterations cells);
    0
  | "table4" | "fig8" ->
    let cells = Eof_expt.App_level.matrix ~iterations () in
    print_endline
      (if name = "table4" then Eof_expt.Table4.render cells
       else Eof_expt.Fig8.render ~iterations cells);
    0
  | "overhead" ->
    print_endline (Eof_expt.Overhead.render_memory ());
    print_endline (Eof_expt.Overhead.render_execution ());
    0
  | "ablation" ->
    print_endline (Eof_expt.Ablation.render_a1 ());
    print_endline (Eof_expt.Ablation.render_a2 ());
    0
  | other ->
    prerr_endline
      (Printf.sprintf
         "unknown artifact %S (table1 table2 table3 table4 fig7 fig8 overhead ablation)"
         other);
    1

let artifact_cmd =
  let artifact_name =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"ARTIFACT"
          ~doc:"One of: table1 table2 table3 table4 fig7 fig8 overhead ablation")
  in
  Cmd.v
    (Cmd.info "artifact" ~doc:"Regenerate one paper table or figure")
    Term.(const artifact $ artifact_name $ iterations_arg)

(* --- eof serve / eof submit -------------------------------------------- *)

module Hub_tenant = Eof_hub.Tenant
module Hub_worker = Eof_hub.Worker
module Hub_inproc = Eof_hub.Inproc
module Hub_socket = Eof_hub.Socket

(* What the hub and its workers need to know about an OS personality:
   builds (memoized in Osbuild, so per-shard resolution is cheap) and
   the spec/table pair that rebinds wire-encoded corpus programs. *)
let hub_target os =
  match target_of os with
  | Error e -> Error e
  | Ok target ->
    let build = Targets.build_hw target in
    let table = Eof_os.Osbuild.api_signatures build in
    (match Eof_spec.Synth.validated_of_api table with
    | Error e -> Error (Printf.sprintf "%s: spec synthesis failed: %s" os e)
    | Ok spec ->
      Ok
        {
          Hub_worker.mk_build = (fun _board -> Targets.build_hw target);
          spec;
          table;
        })

let parse_tenants specs =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | s :: rest ->
      (match Hub_tenant.of_spec s with
      | Ok c -> go (c :: acc) rest
      | Error e -> Error e)
  in
  go [] specs

(* One JSONL file per tenant: the same event stream the fuzz --trace
   flag writes, pre-filtered on the tenant tag. *)
let tenant_trace_sinks obs dir tenants =
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  List.map
    (fun (c : Hub_tenant.config) ->
      let name = c.Hub_tenant.tenant in
      let oc = open_out (Filename.concat dir (name ^ ".jsonl")) in
      Obs.add_sink obs
        (Obs.sink (fun ~t ~board ~tenant ev ->
             if tenant = Some name then begin
               output_string oc (Obs.event_to_json ~t ~board ~tenant ev);
               output_char oc '\n'
             end));
      oc)
    tenants

(* "--kill-worker 1@40": silence worker 1 after its 40th payload. *)
let parse_kill = function
  | None -> Ok None
  | Some s ->
    (match String.index_opt s '@' with
    | Some at ->
      let w = String.sub s 0 at
      and n = String.sub s (at + 1) (String.length s - at - 1) in
      (match (int_of_string_opt w, int_of_string_opt n) with
      | Some w, Some n when w >= 0 && n >= 1 -> Ok (Some (w, n))
      | _, _ -> Error (Printf.sprintf "eof serve: bad --kill-worker %S (want W@N)" s))
    | None -> Error (Printf.sprintf "eof serve: bad --kill-worker %S (want W@N)" s))

let serve inproc socket_path farms tenant_specs trace_dir no_corpus_sync
    max_campaigns journal heartbeat_timeout kill_spec halt_after =
  let corpus_sync = not no_corpus_sync in
  match (inproc, socket_path, parse_kill kill_spec) with
  | _, _, Error e ->
    prerr_endline e;
    2
  | false, None, _ ->
    prerr_endline "eof serve: choose --inproc or --socket PATH";
    2
  | true, Some _, _ ->
    prerr_endline "eof serve: --inproc and --socket are mutually exclusive";
    2
  | true, None, Ok kill ->
    (match parse_tenants tenant_specs with
    | Error e ->
      prerr_endline e;
      2
    | Ok [] ->
      prerr_endline "eof serve --inproc: submit at least one --tenant spec";
      2
    | Ok tenants ->
      let obs = Obs.create () in
      let traces =
        match trace_dir with
        | None -> []
        | Some dir -> tenant_trace_sinks obs dir tenants
      in
      let result =
        Hub_inproc.run ~obs ~corpus_sync ?journal ?heartbeat_timeout ?kill
          ?halt_after ~farms tenants ~resolve:hub_target
      in
      List.iter close_out traces;
      (match result with
      | Error e ->
        prerr_endline e;
        1
      | Ok o when o.Hub_inproc.halted ->
        (* Nothing on stdout: the halted run is an interrupted hub, and
           its resumed successor must print the complete summary alone
           for CI's cmp against an uninterrupted run. *)
        Printf.eprintf "halted after %d payloads (journal holds the rest)\n"
          o.Hub_inproc.payloads;
        0
      | Ok o ->
        (* Summary on stdout is deterministic (cmp-able by CI); the
           wall clock goes to stderr. *)
        print_string (Hub_inproc.summary o);
        Printf.eprintf "wall %.3fs\n" o.Hub_inproc.wall_s;
        0))
  | false, Some socket, Ok kill ->
    if kill <> None || halt_after <> None then begin
      prerr_endline
        "eof serve: --kill-worker/--halt-after are --inproc fault drills \
         (kill the actual processes in socket mode)";
      2
    end
    else (
      match Hub_socket.serve ~corpus_sync ?max_campaigns ?journal
              ?heartbeat_timeout ~socket ~resolve:hub_target ()
      with
      | Ok () -> 0
      | Error e ->
        prerr_endline e;
        1)

let serve_cmd =
  let inproc =
    Arg.(value & flag
         & info [ "inproc" ]
             ~doc:"Run the whole fleet deterministically in this process: every farm on \
                   one cooperative schedule, a virtual clock, protocol traffic through \
                   in-memory queues (still framed through the wire codec). Rerunning the \
                   same command prints a byte-identical summary and traces.")
  in
  let socket =
    Arg.(value & opt (some string) None
         & info [ "socket" ] ~docv:"PATH"
             ~doc:"Serve clients and workers on a Unix domain socket at $(docv). The hub \
                   hosts no farms: start $(b,eof worker --connect) $(docv) processes to \
                   execute shards, then $(b,eof submit --socket) $(docv) campaigns.")
  in
  let farms =
    Arg.(value & opt int 2
         & info [ "farms" ] ~docv:"N"
             ~doc:"Worker count (--inproc mode; socket-mode workers are external processes).")
  in
  let tenant =
    Arg.(value & opt_all string []
         & info [ "tenant" ] ~docv:"SPEC"
             ~doc:"Submit a tenant campaign (repeatable, --inproc mode): comma-separated \
                   $(b,key=value) pairs over defaults — keys $(b,name), $(b,os), $(b,seed), \
                   $(b,iterations), $(b,boards), $(b,farms), $(b,sync), $(b,backend), \
                   $(b,reset), $(b,schedule), $(b,gen). \
                   Example: $(b,name=alice,os=Zephyr,seed=7,iterations=400,farms=2).")
  in
  let trace_dir =
    Arg.(value & opt (some string) None
         & info [ "trace-dir" ] ~docv:"DIR"
             ~doc:"Write one JSONL telemetry trace per tenant into $(docv) \
                   ($(i,tenant).jsonl), each event tagged and filtered by tenant.")
  in
  let no_corpus_sync =
    Arg.(value & flag
         & info [ "no-corpus-sync" ]
             ~doc:"Disable cross-farm seed transplanting (for measuring its overhead).")
  in
  let max_campaigns =
    Arg.(value & opt (some int) None
         & info [ "max-campaigns" ] ~docv:"N"
             ~doc:"Socket mode: exit after $(docv) campaigns complete (default: serve forever).")
  in
  let journal =
    Arg.(value & opt (some string) None
         & info [ "journal" ] ~docv:"FILE"
             ~doc:"Append every state-changing frame to $(docv) before applying it. A hub \
                   restarted on the same journal replays it and resumes: finished \
                   campaigns keep their digests, unfinished ones restart from their seeds.")
  in
  let heartbeat_timeout =
    Arg.(value & opt (some float) None
         & info [ "heartbeat-timeout" ] ~docv:"S"
             ~doc:"Declare a worker dead after $(docv) seconds of silence while it holds \
                   leases; its shards are revoked and reassigned to survivors. Wall-clock \
                   seconds in socket mode, virtual seconds with --inproc (default 30).")
  in
  let kill_worker =
    Arg.(value & opt (some string) None
         & info [ "kill-worker" ] ~docv:"W@N"
             ~doc:"Fault drill (--inproc): silence worker $(i,W) after its $(i,N)-th \
                   payload — no EOF, only the heartbeat deadline notices. Deterministic: \
                   reruns print byte-identical summaries.")
  in
  let halt_after =
    Arg.(value & opt (some int) None
         & info [ "halt-after" ] ~docv:"N"
             ~doc:"Fault drill (--inproc): abandon the drive after $(docv) total payloads, \
                   simulating a hub crash. Prints nothing on stdout; rerun with the same \
                   --journal to resume and print the full summary.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the fleet hub: shard tenant campaigns across farms, sync corpora, dedup crashes fleet-wide")
    Term.(
      const serve $ inproc $ socket $ farms $ tenant $ trace_dir $ no_corpus_sync
      $ max_campaigns $ journal $ heartbeat_timeout $ kill_worker $ halt_after)

let submit socket spec =
  match Hub_tenant.of_spec spec with
  | Error e ->
    prerr_endline e;
    2
  | Ok config ->
    (match Hub_socket.submit ~socket config with
    | Ok digest ->
      print_endline digest;
      0
    | Error e ->
      prerr_endline e;
      1)

let submit_cmd =
  let socket =
    Arg.(required & opt (some string) None
         & info [ "socket" ] ~docv:"PATH" ~doc:"The hub's Unix domain socket.")
  in
  let spec =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"SPEC"
             ~doc:"Tenant campaign spec, comma-separated $(b,key=value) pairs \
                   (see $(b,eof serve --tenant)).")
  in
  Cmd.v
    (Cmd.info "submit"
       ~doc:"Submit a tenant campaign to a running hub and wait for its digest")
    Term.(const submit $ socket $ spec)

(* --- eof worker / eof status -------------------------------------------- *)

let worker connect name log_level =
  let name =
    match name with
    | Some n -> n
    | None -> Printf.sprintf "w%d" (Unix.getpid ())
  in
  match console_level_of_string log_level with
  | Error e ->
    prerr_endline e;
    2
  | Ok console_level ->
    let obs = Obs.create () in
    (match console_level with
    | Some min_level -> Obs.add_sink obs (Obs.console_sink ~min_level ())
    | None -> ());
    (match Hub_socket.worker ~obs ~socket:connect ~name ~resolve:hub_target () with
    | Ok () -> 0
    | Error e ->
      prerr_endline (Printf.sprintf "eof worker %s: %s" name e);
      1)

let worker_cmd =
  let connect =
    Arg.(required & opt (some string) None
         & info [ "connect" ] ~docv:"PATH"
             ~doc:"The hub's Unix domain socket (retries while the hub comes up).")
  in
  let wname =
    Arg.(value & opt (some string) None
         & info [ "name" ] ~docv:"NAME"
             ~doc:"Worker name shown in $(b,eof status) (default: w$(i,PID)).")
  in
  let log_level =
    Arg.(value & opt string "info"
         & info [ "log-level" ] ~docv:"LEVEL"
             ~doc:"Console telemetry on stderr at $(docv): $(b,trace), $(b,debug), \
                   $(b,info), $(b,warn), $(b,error), or $(b,off).")
  in
  Cmd.v
    (Cmd.info "worker"
       ~doc:"Run a farm worker process: connect to a hub, execute leased shards until \
             the hub shuts down")
    Term.(const worker $ connect $ wname $ log_level)

let status connect =
  match Hub_socket.status ~socket:connect with
  | Error e ->
    prerr_endline e;
    1
  | Ok (rows, workers) ->
    if rows = [] then print_endline "no campaigns"
    else
      List.iter
        (fun (r : Eof_hub.Protocol.status_row) ->
          Printf.printf
            "%-16s #%d %-10s %-8s shards %d/%d | executed %d | coverage %d | crashes %d\n"
            r.Eof_hub.Protocol.tenant r.Eof_hub.Protocol.campaign
            r.Eof_hub.Protocol.os
            (if r.Eof_hub.Protocol.finished then "done" else "running")
            r.Eof_hub.Protocol.shards_done r.Eof_hub.Protocol.shards
            r.Eof_hub.Protocol.executed r.Eof_hub.Protocol.coverage
            r.Eof_hub.Protocol.crashes)
        rows;
    if workers = [] then print_endline "no workers"
    else
      List.iter
        (fun (w : Eof_hub.Protocol.worker_row) ->
          Printf.printf "worker %d %-16s %-5s leases %d\n" w.Eof_hub.Protocol.worker
            w.Eof_hub.Protocol.name
            (if w.Eof_hub.Protocol.alive then "alive" else "dead")
            w.Eof_hub.Protocol.leases)
        workers;
    0

let status_cmd =
  let connect =
    Arg.(required & opt (some string) None
         & info [ "connect" ] ~docv:"PATH" ~doc:"The hub's Unix domain socket.")
  in
  Cmd.v
    (Cmd.info "status"
       ~doc:"Query a running hub: per-tenant shard progress, worker liveness, crash counts")
    Term.(const status $ connect)

let main_cmd =
  let doc = "feedback-guided fuzzing of embedded OSs over a (simulated) debug port" in
  Cmd.group
    (Cmd.info "eof" ~version:"1.0.0" ~doc)
    [ fuzz_cmd; trace_cmd; spec_cmd; targets_cmd; artifact_cmd; serve_cmd;
      submit_cmd; worker_cmd; status_cmd ]

let () = exit (Cmd.eval' main_cmd)
