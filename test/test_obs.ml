module Obs = Eof_obs.Obs
module Trace = Eof_obs.Trace

(* --- levels -------------------------------------------------------------- *)

let test_levels () =
  (match Obs.Level.of_string "WARN" with
   | Ok Obs.Level.Warn -> ()
   | _ -> Alcotest.fail "WARN should parse");
  (match Obs.Level.of_string "warning" with
   | Ok Obs.Level.Warn -> ()
   | _ -> Alcotest.fail "warning should parse");
  (match Obs.Level.of_string "loud" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "loud should not parse");
  Alcotest.(check bool) "error >= info" true
    Obs.Level.(at_least ~min:Info Error);
  Alcotest.(check bool) "debug < info" false
    Obs.Level.(at_least ~min:Info Debug);
  List.iter
    (fun l ->
      match Obs.Level.of_string (Obs.Level.to_string l) with
      | Ok l' -> Alcotest.(check bool) "roundtrip" true (l = l')
      | Error e -> Alcotest.fail e)
    Obs.Level.[ Trace; Debug; Info; Warn; Error ]

(* --- json writer <-> trace parser roundtrip ------------------------------ *)

let roundtrip ?board ?tenant ev =
  let line = Obs.event_to_json ~t:1.25 ~board ~tenant ev in
  match Trace.parse_line line with
  | Error e -> Alcotest.fail (Printf.sprintf "unparseable %S: %s" line e)
  | Ok parsed ->
    Alcotest.(check string) "tag" (Obs.Event.name ev) parsed.Trace.ev;
    Alcotest.(check (float 1e-9)) "timestamp" 1.25 parsed.Trace.t;
    Alcotest.(check bool) "board" true (parsed.Trace.board = board);
    Alcotest.(check bool) "tenant" true (parsed.Trace.tenant = tenant);
    parsed

let test_json_roundtrip () =
  let p = roundtrip (Obs.Event.Exchange { tx = 10; rx = 20; timeout = false }) in
  Alcotest.(check bool) "tx field" true
    (List.assoc_opt "tx" p.Trace.fields = Some (Obs.V_int 10));
  Alcotest.(check bool) "timeout field" true
    (List.assoc_opt "timeout" p.Trace.fields = Some (Obs.V_bool false));
  let p =
    roundtrip ~board:3 (Obs.Event.Payload { iteration = 7; status = "completed"; new_edges = 4 })
  in
  Alcotest.(check bool) "status" true
    (List.assoc_opt "status" p.Trace.fields = Some (Obs.V_str "completed"));
  let p = roundtrip (Obs.Event.Span { name = "campaign.payload"; dur_us = 123.456 }) in
  (match List.assoc_opt "dur_us" p.Trace.fields with
   | Some (Obs.V_float f) -> Alcotest.(check (float 1e-3)) "dur" 123.456 f
   | _ -> Alcotest.fail "dur_us should be a float");
  ignore (roundtrip Obs.Event.Reset_board : Trace.line);
  (* Escaping: quotes, backslashes and control bytes survive. *)
  let nasty = "a\"b\\c\nd\te\x01f" in
  let p =
    roundtrip (Obs.Event.Message { level = Obs.Level.Info; text = nasty })
  in
  (match List.assoc_opt "text" p.Trace.fields with
   | Some (Obs.V_str s) ->
     Alcotest.(check string) "escaped text" nasty s
   | _ -> Alcotest.fail "text should be a string")

(* --- counters ------------------------------------------------------------ *)

let test_counters () =
  let bus = Obs.create () in
  let a = Obs.Counter.make bus "x.a" in
  let a' = Obs.Counter.make bus "x.a" in
  let b = Obs.Counter.make bus "x.b" in
  Obs.Counter.incr a;
  Obs.Counter.add a' 10;
  Obs.Counter.add b 2;
  Alcotest.(check int) "aliased" 11 (Obs.Counter.value a);
  Alcotest.(check int) "by name" 11 (Obs.counter_value bus "x.a");
  Alcotest.(check int) "missing is 0" 0 (Obs.counter_value bus "x.zzz");
  Alcotest.(check bool) "snapshot sorted" true
    (Obs.counters bus = [ ("x.a", 11); ("x.b", 2) ]);
  (* Counters are shared across for_board handles. *)
  let h = Obs.for_board bus 2 in
  Obs.Counter.incr (Obs.Counter.make h "x.b");
  Alcotest.(check int) "shared core" 3 (Obs.counter_value bus "x.b")

(* --- spans and the virtual clock ----------------------------------------- *)

let test_spans () =
  let bus = Obs.create () in
  let sink, events = Obs.memory_sink () in
  Obs.add_sink bus sink;
  let now = ref 1.0 in
  Obs.set_clock bus (fun () -> !now);
  let span = Obs.span_begin bus "phase" in
  now := 1.5;
  Obs.span_end bus span;
  Alcotest.(check int) "span count" 1 (Obs.counter_value bus "span.phase.count");
  Alcotest.(check int) "span us" 500_000 (Obs.counter_value bus "span.phase.us");
  match events () with
  | [ (t, None, Obs.Event.Span { name = "phase"; dur_us }) ] ->
    Alcotest.(check (float 1e-6)) "emitted at end" 1.5 t;
    Alcotest.(check (float 1e-3)) "duration" 500_000. dur_us
  | _ -> Alcotest.fail "expected exactly one span event"

(* --- sinks, levels, board tags ------------------------------------------- *)

let test_sinks_and_boards () =
  let bus = Obs.create () in
  Alcotest.(check bool) "inert" false (Obs.active bus);
  Obs.emit bus Obs.Event.Reset_board;  (* no sink: must be a no-op *)
  let sink, events = Obs.memory_sink () in
  Obs.add_sink bus sink;
  Alcotest.(check bool) "active" true (Obs.active bus);
  let warn_only = ref 0 in
  Obs.add_sink bus
    (Obs.sink ~min_level:Obs.Level.Warn (fun ~t:_ ~board:_ ~tenant:_ _ -> incr warn_only));
  let b1 = Obs.for_board bus 1 in
  Obs.emit bus (Obs.Event.Batch { ops = 4 });  (* Trace level *)
  Obs.emit b1 (Obs.Event.Crash_found { kind = "Hang"; operation = "op" });  (* Warn *)
  Obs.message b1 Obs.Level.Info "hello";
  (match events () with
   | [ (_, None, Obs.Event.Batch _);
       (_, Some 1, Obs.Event.Crash_found _);
       (_, Some 1, Obs.Event.Message _) ] -> ()
   | evs -> Alcotest.fail (Printf.sprintf "unexpected stream (%d events)" (List.length evs)));
  Alcotest.(check int) "level filter" 1 !warn_only;
  (* A for_board handle carries its own clock. *)
  Obs.set_clock b1 (fun () -> 9.0);
  Alcotest.(check (float 1e-9)) "own clock" 9.0 (Obs.now b1);
  Alcotest.(check (float 1e-9)) "parent clock untouched" 0.0 (Obs.now bus)

(* --- trace summarization -------------------------------------------------- *)

let test_trace_summarize () =
  let lines =
    [
      {|{"t":0.000000,"ev":"message","level":"info","text":"hi"}|};
      {|{"t":0.001000,"board":0,"ev":"exchange","tx":10,"rx":20,"timeout":false}|};
      {|{"t":0.002000,"board":0,"ev":"exchange","tx":5,"rx":0,"timeout":true}|};
      {|{"t":0.002500,"board":1,"ev":"batch","ops":6}|};
      {|{"t":0.003000,"board":0,"ev":"payload","iteration":1,"status":"completed","new_edges":3}|};
      {|{"t":0.004000,"board":1,"ev":"payload","iteration":1,"status":"crashed","new_edges":2}|};
      {|{"t":0.004100,"board":1,"ev":"crash","kind":"Kernel Panic","operation":"k_free"}|};
      {|{"t":0.004500,"board":1,"ev":"span","name":"campaign.payload","dur_us":1500.000}|};
      {|{"t":0.005000,"ev":"epoch-sync","sync":1,"executed":2,"coverage":41}|};
      "this is not json";
      "";
    ]
  in
  let s = Trace.summarize (List.to_seq lines) in
  Alcotest.(check int) "events" 9 s.Trace.events;
  Alcotest.(check int) "bad lines" 1 s.Trace.bad_lines;
  Alcotest.(check int) "boards" 2 s.Trace.boards;
  Alcotest.(check (float 1e-9)) "t_last" 0.005 s.Trace.t_last;
  Alcotest.(check int) "exchanges" 2 s.Trace.exchanges;
  Alcotest.(check int) "timeouts" 1 s.Trace.timeouts;
  Alcotest.(check int) "bytes tx" 15 s.Trace.bytes_tx;
  Alcotest.(check int) "bytes rx" 20 s.Trace.bytes_rx;
  Alcotest.(check int) "batch ops" 6 s.Trace.batch_ops;
  Alcotest.(check int) "payloads" 2 s.Trace.payloads;
  Alcotest.(check int) "crashes" 1 s.Trace.crashes;
  Alcotest.(check int) "new edges" 5 s.Trace.new_edges;
  Alcotest.(check bool) "coverage final" true (s.Trace.coverage_final = Some 41);
  (match s.Trace.spans with
   | [ ("campaign.payload", 1, us) ] -> Alcotest.(check (float 1e-3)) "span us" 1500. us
   | _ -> Alcotest.fail "span totals wrong");
  (match s.Trace.growth with
   | [ (_, 3); (_, 5) ] -> ()
   | _ -> Alcotest.fail "growth curve wrong");
  let rendered = Trace.render s in
  Alcotest.(check bool) "render non-empty" true (String.length rendered > 0);
  let contains needle hay =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "payload total" true (contains "payloads: 2" rendered)

let test_trace_parse_errors () =
  (match Trace.parse_line {|{"ev":"exchange"}|} with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "missing t must fail");
  (match Trace.parse_line {|{"t":1.0}|} with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "missing ev must fail");
  (match Trace.parse_line {|{"t":1.0,"ev":"x"} trailing|} with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "trailing bytes must fail")

let suite =
  [
    Alcotest.test_case "levels" `Quick test_levels;
    Alcotest.test_case "json writer/parser roundtrip" `Quick test_json_roundtrip;
    Alcotest.test_case "counters" `Quick test_counters;
    Alcotest.test_case "spans on the virtual clock" `Quick test_spans;
    Alcotest.test_case "sinks, levels, board tags" `Quick test_sinks_and_boards;
    Alcotest.test_case "trace summarize" `Quick test_trace_summarize;
    Alcotest.test_case "trace parse errors" `Quick test_trace_parse_errors;
  ]
