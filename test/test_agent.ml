open Eof_hw
open Eof_os
open Eof_agent
open Eof_debug

(* Wire-format unit tests. *)

let sample_program =
  [
    { Wire.api_index = 7; args = [ Wire.W_int 42L; Wire.W_str "hello\x00\xFF" ] };
    { Wire.api_index = 0; args = [] };
    { Wire.api_index = 3; args = [ Wire.W_res 0; Wire.W_int (-1L) ] };
  ]

let test_wire_roundtrip_le () =
  match Wire.encode ~endianness:Arch.Little sample_program with
  | Error e -> Alcotest.fail e
  | Ok s ->
    (match Wire.decode ~endianness:Arch.Little s with
     | Ok p -> Alcotest.(check bool) "roundtrip" true (p = sample_program)
     | Error e -> Alcotest.fail e)

let test_wire_roundtrip_be () =
  match Wire.encode ~endianness:Arch.Big sample_program with
  | Error e -> Alcotest.fail e
  | Ok s ->
    (match Wire.decode ~endianness:Arch.Big s with
     | Ok p -> Alcotest.(check bool) "roundtrip" true (p = sample_program)
     | Error e -> Alcotest.fail e);
    (* Big-endian bytes must not decode as little-endian for multi-call
       programs (the count field flips). *)
    (match Wire.decode ~endianness:Arch.Little s with
     | Ok p -> Alcotest.(check bool) "endianness matters" true (p <> sample_program)
     | Error _ -> ())

let test_wire_rejects () =
  (match Wire.encode ~endianness:Arch.Little [ { Wire.api_index = 0; args = [ Wire.W_res 0 ] } ] with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "self-reference accepted");
  (match Wire.decode ~endianness:Arch.Little "\x01\x00" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "truncated accepted");
  let too_many = List.init 65 (fun _ -> { Wire.api_index = 0; args = [] }) in
  match Wire.encode ~endianness:Arch.Little too_many with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "65 calls accepted"

let test_wire_ram_roundtrip () =
  let mem = Memory.create ~base:0x2000_0000 ~size:8192 ~endianness:Arch.Little in
  (match
     Wire.write_to_ram ~mem ~endianness:Arch.Little ~base:0x2000_0000 ~limit:4096
       sample_program
   with
   | Ok () -> ()
   | Error e -> Alcotest.fail e);
  match Wire.decode_from_ram ~mem ~endianness:Arch.Little ~base:0x2000_0000 with
  | Ok p -> Alcotest.(check bool) "via ram" true (p = sample_program)
  | Error e -> Alcotest.fail e

let test_results_roundtrip () =
  let mem = Memory.create ~base:0 ~size:256 ~endianness:Arch.Little in
  let r = { Wire.Results.executed = 3; statuses = [ 0l; -22l; 5l ] } in
  Wire.Results.write ~mem ~endianness:Arch.Little ~base:0 r;
  let raw = Bytes.to_string (Memory.read_bytes mem ~addr:0 ~len:(Wire.Results.byte_size 3)) in
  match Wire.Results.read ~raw ~endianness:Arch.Little with
  | Ok r' -> Alcotest.(check bool) "results" true (r = r')
  | Error e -> Alcotest.fail e

(* End-to-end machine tests: drive the Zephyr build over the debug link
   exactly as the fuzzer does. *)

let make_zephyr () =
  let build = Osbuild.make ~board_profile:Profiles.stm32f4_disco Zephyr.spec in
  match Machine.create build with
  | Ok m -> m
  | Error e -> Alcotest.fail (Eof_util.Eof_error.to_string e)

let ok_or_fail = function
  | Ok v -> v
  | Error e -> Alcotest.fail (Session.error_to_string e)

let continue_to session expect_pc =
  match ok_or_fail (Session.continue_ session) with
  | Session.Stopped_breakpoint pc when pc = expect_pc -> ()
  | Session.Stopped_breakpoint pc -> Alcotest.fail (Printf.sprintf "stopped at 0x%x" pc)
  | Session.Stopped_quantum pc -> Alcotest.fail (Printf.sprintf "quantum at 0x%x" pc)
  | Session.Stopped_fault pc -> Alcotest.fail (Printf.sprintf "fault at 0x%x" pc)
  | Session.Target_exited -> Alcotest.fail "target exited"

let api_index table name =
  let rec go i = function
    | [] -> Alcotest.fail ("no api " ^ name)
    | (e : Eof_rtos.Api.entry) :: _ when e.Eof_rtos.Api.name = name -> i
    | _ :: rest -> go (i + 1) rest
  in
  go 0 table.Eof_rtos.Api.entries


let send_program machine program =
  let build = Machine.build machine in
  let session = Machine.session machine in
  let syms = Osbuild.syms build in
  let endianness = (Board.profile (Osbuild.board build)).Board.arch.Arch.endianness in
  ok_or_fail (Session.set_breakpoint session syms.Osbuild.sym_executor_main);
  ok_or_fail (Session.set_breakpoint session syms.Osbuild.sym_loop_back);
  continue_to session syms.Osbuild.sym_executor_main;
  let payload =
    match Wire.encode ~endianness program with Ok s -> s | Error e -> Alcotest.fail e
  in
  let mailbox = Osbuild.mailbox_base build in
  let header = Bytes.create 8 in
  (match endianness with
   | Arch.Little ->
     Bytes.set_int32_le header 0 Wire.magic;
     Bytes.set_int32_le header 4 (Int32.of_int (String.length payload))
   | Arch.Big ->
     Bytes.set_int32_be header 0 Wire.magic;
     Bytes.set_int32_be header 4 (Int32.of_int (String.length payload)));
  ok_or_fail (Session.write_mem session ~addr:mailbox (Bytes.to_string header ^ payload));
  continue_to session syms.Osbuild.sym_loop_back;
  (* Read back the result summary. *)
  let raw =
    ok_or_fail
      (Session.read_mem session ~addr:(Agent.results_base build)
         ~len:(Wire.Results.byte_size (List.length program)))
  in
  match Wire.Results.read ~raw ~endianness with
  | Ok r -> r
  | Error e -> Alcotest.fail e

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let test_end_to_end_simple_program () =
  let machine = make_zephyr () in
  let build = Machine.build machine in
  let table = Osbuild.api_signatures build in
  let prog =
    [
      { Wire.api_index = api_index table "k_sem_init"; args = [ Wire.W_int 1L; Wire.W_int 5L ] };
      { Wire.api_index = api_index table "k_sem_take"; args = [ Wire.W_res 0 ] };
      { Wire.api_index = api_index table "k_sem_take"; args = [ Wire.W_res 0 ] };
    ]
  in
  let results = send_program machine prog in
  Alcotest.(check int) "executed" 3 results.Wire.Results.executed;
  (match results.Wire.Results.statuses with
   | [ a; b; c ] ->
     Alcotest.(check int32) "create ok" 0l a;
     Alcotest.(check int32) "first take ok" 0l b;
     Alcotest.(check int32) "second take EAGAIN" (-11l) c
   | _ -> Alcotest.fail "wrong status count");
  let log = ok_or_fail (Session.drain_uart (Machine.session machine)) in
  Alcotest.(check bool) "boot banner seen" true (contains ~needle:"Booting Zephyr" log)

let test_end_to_end_coverage_collected () =
  let machine = make_zephyr () in
  let build = Machine.build machine in
  let session = Machine.session machine in
  let table = Osbuild.api_signatures build in
  let prog =
    [
      { Wire.api_index = api_index table "k_msgq_create";
        args = [ Wire.W_int 4L; Wire.W_int 16L ] };
      { Wire.api_index = api_index table "k_msgq_put";
        args = [ Wire.W_res 0; Wire.W_str "payload!" ] };
      { Wire.api_index = api_index table "z_impl_k_msgq_get"; args = [ Wire.W_res 0 ] };
    ]
  in
  let _ = send_program machine prog in
  let layout = Osbuild.covbuf_layout build in
  let widx =
    ok_or_fail (Session.read_u32 session ~addr:(Eof_cov.Sancov.Layout.write_index_addr layout))
  in
  Alcotest.(check bool) "coverage records written" true (Int32.to_int widx > 0);
  let raw =
    ok_or_fail
      (Session.read_mem session
         ~addr:(Eof_cov.Sancov.Layout.records_addr layout)
         ~len:(4 * Int32.to_int widx))
  in
  let edges =
    Eof_cov.Sancov.decode_records ~endianness:Arch.Little ~count:(Int32.to_int widx) raw
  in
  let cap = Osbuild.edge_capacity build in
  Alcotest.(check bool) "edges in range" true (List.for_all (fun e -> e >= 0 && e < cap) edges);
  Alcotest.(check bool) "distinct edges" true (List.length (List.sort_uniq compare edges) > 3)

let test_end_to_end_crash_flow () =
  let machine = make_zephyr () in
  let build = Machine.build machine in
  let session = Machine.session machine in
  let syms = Osbuild.syms build in
  let table = Osbuild.api_signatures build in
  ok_or_fail (Session.set_breakpoint session syms.Osbuild.sym_executor_main);
  ok_or_fail (Session.set_breakpoint session syms.Osbuild.sym_loop_back);
  ok_or_fail (Session.set_breakpoint session syms.Osbuild.sym_handle_exception);
  continue_to session syms.Osbuild.sym_executor_main;
  let endianness = (Board.profile (Osbuild.board build)).Board.arch.Arch.endianness in
  let prog =
    [ { Wire.api_index = api_index table "syz_json_deep_encode"; args = [ Wire.W_int 12L ] } ]
  in
  let payload = match Wire.encode ~endianness prog with Ok s -> s | Error e -> Alcotest.fail e in
  let header = Bytes.create 8 in
  Bytes.set_int32_le header 0 Wire.magic;
  Bytes.set_int32_le header 4 (Int32.of_int (String.length payload));
  ok_or_fail
    (Session.write_mem session ~addr:(Osbuild.mailbox_base build)
       (Bytes.to_string header ^ payload));
  (* First stop: the exception-monitor breakpoint at the panic handler. *)
  (match ok_or_fail (Session.continue_ session) with
   | Session.Stopped_breakpoint pc ->
     Alcotest.(check int) "panic handler bp" syms.Osbuild.sym_handle_exception pc
   | _ -> Alcotest.fail "expected panic-handler stop");
  let log = ok_or_fail (Session.drain_uart session) in
  Alcotest.(check bool) "panic banner" true (contains ~needle:"KERNEL PANIC" log);
  Alcotest.(check bool) "backtrace" true (contains ~needle:"json_obj_encode" log);
  (* Continuing past the handler raises the hardware fault. *)
  (match ok_or_fail (Session.continue_ session) with
   | Session.Stopped_fault _ -> ()
   | _ -> Alcotest.fail "expected fault stop");
  let fault = ok_or_fail (Session.last_fault session) in
  Alcotest.(check bool) "fault text" true (contains ~needle:"stack overflow" fault);
  (* Reset and verify the target boots again. *)
  ok_or_fail (Session.reset_target session);
  continue_to session syms.Osbuild.sym_executor_main

let test_end_to_end_boot_failure_and_reflash () =
  let machine = make_zephyr () in
  let build = Machine.build machine in
  let session = Machine.session machine in
  let syms = Osbuild.syms build in
  let board = Osbuild.board build in
  (* Sabotage the kernel partition in flash (as a buggy test case that
     scribbles flash would), then reset. *)
  let kernel = Option.get (Partition.find (Board.partition_table board) "kernel") in
  Flash.corrupt (Board.flash board)
    ~addr:(Flash.base (Board.flash board) + kernel.Partition.offset + 64)
    "CORRUPTED";
  ok_or_fail (Session.reset_target session);
  Alcotest.(check bool) "bootok reports failure" false (ok_or_fail (Session.boot_ok session));
  (* The PC pins at the boot symbol: the stall watchdog's signature. *)
  (match ok_or_fail (Session.continue_ session) with
   | Session.Stopped_quantum pc -> Alcotest.(check int) "stuck at boot" syms.Osbuild.sym_boot pc
   | _ -> Alcotest.fail "expected quantum stop at boot");
  let pc1 = ok_or_fail (Session.read_pc session) in
  (match ok_or_fail (Session.continue_ session) with
   | Session.Stopped_quantum pc2 -> Alcotest.(check int) "pc did not advance" pc1 pc2
   | _ -> Alcotest.fail "expected second quantum stop");
  (* Restoration: reflash every partition over the debug link. *)
  let image = Osbuild.image build in
  let flash_base = Flash.base (Board.flash board) in
  List.iter
    (fun (e : Partition.entry) ->
      let blob =
        match List.assoc_opt e.Partition.name image.Image.blobs with
        | Some b -> b
        | None -> Alcotest.fail "missing blob"
      in
      ok_or_fail (Session.flash_erase session ~addr:(flash_base + e.Partition.offset) ~len:e.Partition.size);
      ok_or_fail (Session.flash_write session ~addr:(flash_base + e.Partition.offset) blob);
      ok_or_fail (Session.flash_done session))
    image.Image.table;
  ok_or_fail (Session.reset_target session);
  Alcotest.(check bool) "boots after reflash" true (ok_or_fail (Session.boot_ok session));
  ok_or_fail (Session.set_breakpoint session syms.Osbuild.sym_executor_main);
  continue_to session syms.Osbuild.sym_executor_main

let test_agent_ignores_garbage_mailbox () =
  let machine = make_zephyr () in
  let build = Machine.build machine in
  let session = Machine.session machine in
  let syms = Osbuild.syms build in
  ok_or_fail (Session.set_breakpoint session syms.Osbuild.sym_executor_main);
  continue_to session syms.Osbuild.sym_executor_main;
  ok_or_fail (Session.write_mem session ~addr:(Osbuild.mailbox_base build) "garbagegarbage");
  (* No valid magic: the agent must come back around without executing. *)
  continue_to session syms.Osbuild.sym_executor_main

let prop_wire_roundtrip =
  let arg_gen =
    QCheck.Gen.(
      frequency
        [
          (3, map (fun v -> Wire.W_int v) int64);
          (2, map (fun s -> Wire.W_str s) (string_size (0 -- 32)));
        ])
  in
  let program_gen =
    QCheck.Gen.(
      list_size (0 -- 10)
        (map2
           (fun idx args -> { Wire.api_index = idx land 0xFFFF; args })
           nat (list_size (0 -- 5) arg_gen)))
  in
  QCheck.Test.make ~name:"wire roundtrip (arbitrary programs)" ~count:200
    (QCheck.make program_gen) (fun prog ->
      match Wire.encode ~endianness:Arch.Big prog with
      | Error _ -> QCheck.assume_fail ()
      | Ok s ->
        (match Wire.decode ~endianness:Arch.Big s with
         | Ok p -> p = prog
         | Error _ -> false))

let suite =
  [
    Alcotest.test_case "wire roundtrip LE" `Quick test_wire_roundtrip_le;
    Alcotest.test_case "wire roundtrip BE" `Quick test_wire_roundtrip_be;
    Alcotest.test_case "wire rejects" `Quick test_wire_rejects;
    Alcotest.test_case "wire via RAM" `Quick test_wire_ram_roundtrip;
    Alcotest.test_case "results roundtrip" `Quick test_results_roundtrip;
    Alcotest.test_case "e2e simple program" `Quick test_end_to_end_simple_program;
    Alcotest.test_case "e2e coverage collected" `Quick test_end_to_end_coverage_collected;
    Alcotest.test_case "e2e crash flow" `Quick test_end_to_end_crash_flow;
    Alcotest.test_case "e2e boot failure + reflash" `Quick test_end_to_end_boot_failure_and_reflash;
    Alcotest.test_case "agent ignores garbage mailbox" `Quick test_agent_ignores_garbage_mailbox;
    QCheck_alcotest.to_alcotest prop_wire_roundtrip;
  ]
