(* The native transplant backend and its differential oracle.

   The load-bearing property is backend equivalence: a campaign run
   in-process (no RSP, no transport, direct-memory coverage drains) must
   report the exact same observable results — digest, crash dedup set,
   corpus, recovery counts — as the same campaign over the debug link.
   These tests pin that equivalence on the interesting schedules:
   crashing payloads, liveness-stall recovery, and multi-board farms. *)

open Eof_os
module Machine = Eof_agent.Machine
module Campaign = Eof_core.Campaign
module Farm = Eof_core.Farm
module Diff = Eof_core.Diff
module Report = Eof_core.Report
module Eof_error = Eof_util.Eof_error

let zephyr () = Osbuild.make ~board_profile:Eof_hw.Profiles.stm32f4_disco Zephyr.spec

let rtthread () = Osbuild.make ~board_profile:Eof_hw.Profiles.esp32_devkitc Rtthread.spec

let run_both config mk_build =
  let run backend =
    match Campaign.run { config with Campaign.backend } (mk_build ()) with
    | Ok o -> o
    | Error e ->
      Alcotest.fail
        (Printf.sprintf "%s run failed: %s" (Machine.backend_name backend)
           (Eof_error.to_string e))
  in
  (run Machine.Link, run Machine.Native)

(* --- backend equivalence ------------------------------------------------ *)

let test_diff_with_crashes () =
  let config = { Campaign.default_config with Campaign.seed = 11L; iterations = 250 } in
  let link, native = run_both config zephyr in
  (* The schedule must exercise the crash path, or this test pins
     nothing interesting. *)
  Alcotest.(check bool) "link run crashed" true (link.Campaign.crash_events > 0);
  Alcotest.(check string) "digest equal"
    (Report.campaign_digest link)
    (Report.campaign_digest native);
  Alcotest.(check (list string)) "crash dedup sets equal"
    (List.map Eof_core.Crash.dedup_key link.Campaign.crashes)
    (List.map Eof_core.Crash.dedup_key native.Campaign.crashes);
  Alcotest.(check int) "resets equal" link.Campaign.resets native.Campaign.resets;
  (* And the native clock must be strictly cheaper: same CPU cost, no
     link latency term. *)
  Alcotest.(check bool) "native virtual time below link" true
    (native.Campaign.virtual_s < link.Campaign.virtual_s)

(* RT-Thread's hang bug (#5): get_type on a detached object never
   returns, which is what drives the PC-stall watchdog. Hand-built so
   the stall schedule is deterministic rather than hoping the generator
   stumbles into it. *)
let hang_seed build =
  let table = Osbuild.api_signatures build in
  let spec =
    match Eof_spec.Synth.validated_of_api table with
    | Ok s -> s
    | Error e -> Alcotest.fail e
  in
  let api_index name =
    let rec go i = function
      | [] -> Alcotest.fail ("no api " ^ name)
      | (e : Eof_rtos.Api.entry) :: _ when e.Eof_rtos.Api.name = name -> i
      | _ :: rest -> go (i + 1) rest
    in
    go 0 table.Eof_rtos.Api.entries
  in
  let call name args =
    match Eof_spec.Ast.find_call spec name with
    | Some c -> { Eof_core.Prog.spec = c; api_index = api_index name; args }
    | None -> Alcotest.fail ("no spec call " ^ name)
  in
  [
    call "rt_event_create" [];
    call "rt_object_detach" [ Eof_core.Prog.Res 0 ];
    call "rt_object_get_type" [ Eof_core.Prog.Res 0 ];
  ]

let test_diff_with_stall_recovery () =
  (* RT-Thread's hang bug drives the PC-stall watchdog: the interesting
     equivalence here is that stall detection, the reboot it triggers
     and the hang crash record all land identically on both backends. *)
  let config =
    {
      Campaign.default_config with
      Campaign.seed = 4L;
      iterations = 220;
      initial_seeds = [ hang_seed (rtthread ()) ];
    }
  in
  let link, native = run_both config rtthread in
  Alcotest.(check bool) "link run stalled" true (link.Campaign.stalls > 0);
  Alcotest.(check int) "stalls equal" link.Campaign.stalls native.Campaign.stalls;
  Alcotest.(check string) "digest equal"
    (Report.campaign_digest link)
    (Report.campaign_digest native)

let test_diff_runner_verdict () =
  let config = { Campaign.default_config with Campaign.seed = 7L; iterations = 120 } in
  match Diff.run config zephyr with
  | Error e -> Alcotest.fail (Eof_error.to_string e)
  | Ok v ->
    Alcotest.(check bool) "backends agree" true v.Diff.equal;
    Alcotest.(check (list string)) "no mismatches" []
      (List.map (fun m -> m.Diff.field) v.Diff.mismatches);
    Alcotest.(check bool) "speedup measured" true (v.Diff.speedup_virtual > 1.)

let test_diff_farm () =
  let config =
    {
      Farm.default_config with
      Farm.boards = 3;
      sync_every = 10;
      base = { Campaign.default_config with Campaign.seed = 9L; iterations = 120 };
    }
  in
  match Diff.run_farm config (fun _ -> zephyr ()) with
  | Error e -> Alcotest.fail (Eof_error.to_string e)
  | Ok v ->
    Alcotest.(check bool)
      ("farm backends agree\n" ^ Diff.report v)
      true v.Diff.equal

(* --- snapshot reset policies -------------------------------------------- *)

let test_snapshot_policy_digest_equal () =
  (* On a fault-free link the ladder never climbs, so arming a snapshot
     must change nothing observable: same seed, same digest, policy by
     policy. Only recovery cost may differ — and no recovery happens. *)
  let run reset_policy =
    let bus = Eof_obs.Obs.create () in
    let config =
      { Campaign.default_config with Campaign.seed = 21L; iterations = 150;
        reset_policy }
    in
    match Campaign.run ~obs:bus config (zephyr ()) with
    | Ok o -> (o, Eof_obs.Obs.counter_value bus "snapshot.saves")
    | Error e -> Alcotest.fail (Eof_error.to_string e)
  in
  let ladder, ladder_saves = run Campaign.Ladder in
  let snapshot, snapshot_saves = run Campaign.Snapshot in
  Alcotest.(check int) "ladder never saves" 0 ladder_saves;
  Alcotest.(check int) "snapshot policy saves once" 1 snapshot_saves;
  Alcotest.(check string) "digest equal across policies"
    (Report.campaign_digest ladder)
    (Report.campaign_digest snapshot)

let test_fresh_per_program_deterministic () =
  let run () =
    let bus = Eof_obs.Obs.create () in
    let config =
      { Campaign.default_config with Campaign.seed = 33L; iterations = 120;
        reset_policy = Campaign.Fresh_per_program }
    in
    match Campaign.run ~obs:bus config (zephyr ()) with
    | Ok o ->
      (o,
       Eof_obs.Obs.counter_value bus "snapshot.restores",
       Eof_obs.Obs.counter_value bus "snapshot.pages_copied")
    | Error e -> Alcotest.fail (Eof_error.to_string e)
  in
  let o1, restores1, copied1 = run () in
  let o2, restores2, copied2 = run () in
  Alcotest.(check bool) "made progress" true (o1.Campaign.coverage > 0);
  Alcotest.(check int) "one restore per payload" o1.Campaign.iterations_done
    restores1;
  Alcotest.(check bool) "restores actually copy pages" true (copied1 > 0);
  Alcotest.(check string) "same seed, same digest"
    (Report.campaign_digest o1) (Report.campaign_digest o2);
  Alcotest.(check int) "same restore schedule" restores1 restores2;
  Alcotest.(check int) "same pages copied" copied1 copied2

let test_diff_snapshot_policies () =
  (* The differential oracle must hold under both snapshot policies: the
     native backend's in-process snapshot and the link's stub-side
     QSnapshot must copy the same pages at the same points. *)
  List.iter
    (fun reset_policy ->
      let config =
        { Campaign.default_config with Campaign.seed = 13L; iterations = 120;
          reset_policy }
      in
      match Diff.run config zephyr with
      | Error e -> Alcotest.fail (Eof_error.to_string e)
      | Ok v ->
        Alcotest.(check bool)
          (Campaign.reset_policy_name reset_policy ^ " backends agree\n"
           ^ Diff.report v)
          true v.Diff.equal)
    [ Campaign.Snapshot; Campaign.Fresh_per_program ]

let test_reset_policy_names () =
  List.iter
    (fun p ->
      match Campaign.reset_policy_of_name (Campaign.reset_policy_name p) with
      | Ok p' when p' = p -> ()
      | _ -> Alcotest.fail ("name roundtrip: " ^ Campaign.reset_policy_name p))
    [ Campaign.Ladder; Campaign.Snapshot; Campaign.Fresh_per_program ];
  (match Campaign.reset_policy_of_name "FRESH" with
   | Ok Campaign.Fresh_per_program -> ()
   | _ -> Alcotest.fail "fresh alias, case-insensitive");
  match Campaign.reset_policy_of_name "warp" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown policy must be rejected"

(* --- native constraints ------------------------------------------------- *)

let test_native_rejects_fault_rate () =
  let config =
    {
      Campaign.default_config with
      Campaign.backend = Machine.Native;
      fault_rate = 0.05;
      iterations = 10;
    }
  in
  (match Campaign.run config (zephyr ()) with
   | Error { Eof_error.kind = Eof_error.Config _; _ } -> ()
   | Error e -> Alcotest.fail ("wrong error: " ^ Eof_error.to_string e)
   | Ok _ -> Alcotest.fail "native + fault_rate must be rejected");
  (* The farm applies the same gate before building any board. *)
  let farm_config = { Farm.default_config with Farm.base = config } in
  (match Farm.run farm_config (fun _ -> zephyr ()) with
   | Error { Eof_error.kind = Eof_error.Config _; _ } -> ()
   | Error e -> Alcotest.fail ("wrong farm error: " ^ Eof_error.to_string e)
   | Ok _ -> Alcotest.fail "farm native + fault_rate must be rejected");
  (* And so does diff mode — a faulted link run has no native
     counterpart. *)
  match Diff.run { config with Campaign.backend = Machine.Link } zephyr with
  | Error { Eof_error.kind = Eof_error.Config _; _ } -> ()
  | Error e -> Alcotest.fail ("wrong diff error: " ^ Eof_error.to_string e)
  | Ok _ -> Alcotest.fail "diff + fault_rate must be rejected"

let test_native_machine_has_no_link () =
  match Machine.create_native (zephyr ()) with
  | Error e -> Alcotest.fail (Eof_error.to_string e)
  | Ok m ->
    Alcotest.(check bool) "backend native" true (Machine.backend m = Machine.Native);
    Alcotest.(check bool) "no vBatch capability" false (Machine.supports_batch m);
    (match Machine.session m with
     | exception Invalid_argument _ -> ()
     | _ -> Alcotest.fail "session must raise on native");
    (match Machine.resync m with
     | Ok () -> ()
     | Error e -> Alcotest.fail ("native resync: " ^ Eof_error.to_string e))

let test_backend_names () =
  Alcotest.(check string) "link" "link" (Machine.backend_name Machine.Link);
  Alcotest.(check string) "native" "native" (Machine.backend_name Machine.Native);
  (match Machine.backend_of_name "Native" with
   | Ok Machine.Native -> ()
   | _ -> Alcotest.fail "case-insensitive native");
  match Machine.backend_of_name "jtag" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown backend must be rejected"

(* --- satellite: crc32 table + wire encode_into -------------------------- *)

let test_crc32_known_answers () =
  (* The IEEE 802.3 check value. *)
  Alcotest.(check int32) "check string" 0xCBF43926l
    (Eof_util.Crc32.digest_string "123456789");
  Alcotest.(check int32) "empty" 0l (Eof_util.Crc32.digest_string "");
  (* Incremental update composes to the same digest. *)
  let incremental =
    Eof_util.Crc32.finish
      (String.fold_left Eof_util.Crc32.update (Eof_util.Crc32.start ()) "123456789")
  in
  Alcotest.(check int32) "incremental composes" 0xCBF43926l incremental;
  (* Ranged digest agrees with the string digest over a 4k sector. *)
  let sector = Bytes.make 4096 '\x5A' in
  Bytes.set sector 17 '\x00';
  Alcotest.(check int32) "ranged = whole"
    (Eof_util.Crc32.digest_string (Bytes.to_string sector))
    (Eof_util.Crc32.digest_bytes sector ~pos:0 ~len:4096)

let test_encode_into_matches_encode () =
  let build = zephyr () in
  let table = Osbuild.api_signatures build in
  let spec =
    match Eof_spec.Synth.validated_of_api table with
    | Ok s -> s
    | Error e -> Alcotest.fail e
  in
  let gen =
    Eof_core.Gen.create ~rng:(Eof_util.Rng.create 3L) ~spec ~table ()
  in
  let buf = Buffer.create 256 in
  List.iter
    (fun endianness ->
      for _ = 1 to 50 do
        let wire = Eof_core.Prog.to_wire (Eof_core.Gen.generate gen ~max_len:10) in
        match Eof_agent.Wire.encode ~endianness wire with
        | Error e -> Alcotest.fail e
        | Ok reference ->
          Buffer.clear buf;
          (match Eof_agent.Wire.encode_into ~endianness buf wire with
           | Error e -> Alcotest.fail e
           | Ok () -> ());
          Alcotest.(check string) "encode_into = encode" reference (Buffer.contents buf)
      done)
    [ Eof_hw.Arch.Little; Eof_hw.Arch.Big ]

let test_synth_memoized () =
  let table = Osbuild.api_signatures (zephyr ()) in
  match
    (Eof_spec.Synth.validated_of_api table, Eof_spec.Synth.validated_of_api table)
  with
  | Ok a, Ok b ->
    (* Same physical value: the parse happened once. *)
    Alcotest.(check bool) "shared parse result" true (a == b)
  | _ -> Alcotest.fail "spec synthesis failed"

let suite =
  [
    Alcotest.test_case "diff: crashing campaign backend-equal" `Slow test_diff_with_crashes;
    Alcotest.test_case "diff: stall recovery backend-equal" `Slow
      test_diff_with_stall_recovery;
    Alcotest.test_case "diff runner verdict" `Slow test_diff_runner_verdict;
    Alcotest.test_case "diff: multi-board farm backend-equal" `Slow test_diff_farm;
    Alcotest.test_case "snapshot policy digest-equal to ladder" `Slow
      test_snapshot_policy_digest_equal;
    Alcotest.test_case "fresh-per-program deterministic" `Slow
      test_fresh_per_program_deterministic;
    Alcotest.test_case "diff: snapshot policies backend-equal" `Slow
      test_diff_snapshot_policies;
    Alcotest.test_case "reset policy names" `Quick test_reset_policy_names;
    Alcotest.test_case "native rejects fault injection" `Quick
      test_native_rejects_fault_rate;
    Alcotest.test_case "native machine has no link" `Quick test_native_machine_has_no_link;
    Alcotest.test_case "backend names" `Quick test_backend_names;
    Alcotest.test_case "crc32 known answers" `Quick test_crc32_known_answers;
    Alcotest.test_case "wire encode_into matches encode" `Quick
      test_encode_into_matches_encode;
    Alcotest.test_case "spec synthesis memoized" `Quick test_synth_memoized;
  ]
