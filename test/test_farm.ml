open Eof_os
module Campaign = Eof_core.Campaign
module Farm = Eof_core.Farm
module Corpus = Eof_core.Corpus
module Prog = Eof_core.Prog
module Crash = Eof_core.Crash
module Bitset = Eof_util.Bitset

let mk_build _board =
  Osbuild.make ~board_profile:Eof_hw.Profiles.stm32f4_disco Zephyr.spec

(* --- the refactor contract: run = init; step*; finish ------------------- *)

let test_step_loop_equals_run () =
  let config = { Campaign.default_config with iterations = 120; seed = 99L } in
  let via_run =
    match Campaign.run config (mk_build 0) with
    | Ok o -> o
    | Error e -> Alcotest.fail (Eof_util.Eof_error.to_string e)
  in
  let via_steps =
    match Campaign.init config (mk_build 0) with
    | Error e -> Alcotest.fail (Eof_util.Eof_error.to_string e)
    | Ok st ->
      let steps = ref 0 in
      while not (Campaign.finished st) do
        Campaign.step st;
        incr steps
      done;
      Alcotest.(check int) "one step per iteration" 120 !steps;
      Campaign.finish st
  in
  (* Polymorphic equality over the whole outcome record: coverage,
     bitmap bytes, series (floats included), crashes, every counter. *)
  Alcotest.(check bool) "bit-identical outcome" true (via_run = via_steps)

(* --- boards:1 must be the plain campaign, bit for bit ------------------- *)

let test_one_board_farm_equals_campaign () =
  let base = { Campaign.default_config with iterations = 150; seed = 21L } in
  let farm =
    match Farm.run { Farm.default_config with boards = 1; base } mk_build with
    | Ok o -> o
    | Error e -> Alcotest.fail (Eof_util.Eof_error.to_string e)
  in
  let solo =
    match Campaign.run base (mk_build 0) with
    | Ok o -> o
    | Error e -> Alcotest.fail (Eof_util.Eof_error.to_string e)
  in
  Alcotest.(check bool) "board outcome bit-identical" true (farm.Farm.per_board.(0) = solo);
  Alcotest.(check int) "global coverage" solo.Campaign.coverage farm.Farm.coverage;
  Alcotest.(check bool) "global bitmap" true
    (Bitset.to_list solo.Campaign.coverage_bitmap
    = Bitset.to_list farm.Farm.coverage_bitmap);
  Alcotest.(check bool) "global crashes" true (solo.Campaign.crashes = farm.Farm.crashes);
  Alcotest.(check int) "crash events" solo.Campaign.crash_events farm.Farm.crash_events;
  Alcotest.(check int) "executed" solo.Campaign.executed_programs farm.Farm.executed_programs;
  Alcotest.(check bool) "global corpus" true
    (List.map Prog.hash solo.Campaign.final_corpus
    = List.map Prog.hash farm.Farm.final_corpus);
  Alcotest.(check bool) "virtual clock" true
    (solo.Campaign.virtual_s = farm.Farm.virtual_s)

(* --- cooperative backend determinism ------------------------------------ *)

let farm_digest (o : Farm.outcome) =
  ( Bitset.to_list o.Farm.coverage_bitmap,
    List.map Prog.hash o.Farm.final_corpus,
    List.map Crash.dedup_key o.Farm.crashes,
    o.Farm.crash_events,
    o.Farm.executed_programs,
    o.Farm.iterations_done,
    o.Farm.syncs,
    List.map
      (fun s -> (s.Farm.executed, s.Farm.virtual_s, s.Farm.coverage))
      o.Farm.sync_series )

let test_cooperative_deterministic () =
  let run () =
    let config =
      {
        Farm.default_config with
        boards = 3;
        sync_every = 20;
        base = { Campaign.default_config with iterations = 180; seed = 9L };
      }
    in
    match Farm.run config mk_build with
    | Ok o -> o
    | Error e -> Alcotest.fail (Eof_util.Eof_error.to_string e)
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "two runs, same global state" true
    (farm_digest a = farm_digest b);
  Alcotest.(check int) "budget spent exactly" 180 a.Farm.iterations_done;
  Alcotest.(check bool) "all boards reported" true (Array.length a.Farm.per_board = 3)

(* --- cross-board sharing ------------------------------------------------ *)

let test_global_state_is_a_union () =
  let config =
    {
      Farm.default_config with
      boards = 4;
      sync_every = 15;
      base = { Campaign.default_config with iterations = 400; seed = 5L };
    }
  in
  match Farm.run config mk_build with
  | Error e -> Alcotest.fail (Eof_util.Eof_error.to_string e)
  | Ok o ->
    (* Global coverage is the union: at least every shard's own count,
       and exactly the bits the shards own bitmaps contain. *)
    let union = Bitset.create (Bitset.capacity o.Farm.coverage_bitmap) in
    Array.iter
      (fun (b : Campaign.outcome) ->
        ignore (Bitset.union_into ~dst:union ~src:b.Campaign.coverage_bitmap : int);
        Alcotest.(check bool) "global >= shard" true
          (o.Farm.coverage >= b.Campaign.coverage))
      o.Farm.per_board;
    Alcotest.(check bool) "global coverage = union of shards" true
      (Bitset.to_list union = Bitset.to_list o.Farm.coverage_bitmap);
    (* Crash list is globally deduplicated. *)
    let keys = List.map Crash.dedup_key o.Farm.crashes in
    Alcotest.(check bool) "no duplicate crash signatures" true
      (List.length keys = List.length (List.sort_uniq compare keys));
    (* Every shard-discovered signature survives into the global list. *)
    Array.iter
      (fun (b : Campaign.outcome) ->
        List.iter
          (fun c ->
            Alcotest.(check bool) "shard crash in global table" true
              (List.mem (Crash.dedup_key c) keys))
          b.Campaign.crashes)
      o.Farm.per_board;
    Alcotest.(check bool) "executed split across shards" true
      (Array.for_all
         (fun (b : Campaign.outcome) -> b.Campaign.iterations_done = 100)
         o.Farm.per_board);
    Alcotest.(check bool) "syncs happened" true (o.Farm.syncs > 1)

(* --- the Domain backend ------------------------------------------------- *)

let test_domains_backend_smoke () =
  let config =
    {
      Farm.boards = 2;
      sync_every = 10;
      backend = Farm.Domains;
      base = { Campaign.default_config with iterations = 80; seed = 3L };
    }
  in
  match Farm.run config mk_build with
  | Error e -> Alcotest.fail (Eof_util.Eof_error.to_string e)
  | Ok o ->
    Alcotest.(check int) "budget spent" 80 o.Farm.iterations_done;
    Alcotest.(check bool) "coverage found" true (o.Farm.coverage > 0);
    Alcotest.(check bool) "programs executed" true (o.Farm.executed_programs > 0);
    Alcotest.(check int) "both boards ran" 2 (Array.length o.Farm.per_board);
    Array.iter
      (fun (b : Campaign.outcome) ->
        Alcotest.(check int) "per-board budget" 40 b.Campaign.iterations_done)
      o.Farm.per_board;
    (* The farm clock is the slowest board, not the sum: parallel boards
       make the campaign faster than the same budget on one board. *)
    let sum =
      Array.fold_left (fun a (b : Campaign.outcome) -> a +. b.Campaign.virtual_s) 0.
        o.Farm.per_board
    in
    Alcotest.(check bool) "parallel virtual clock" true (o.Farm.virtual_s < sum)

let test_farm_rejects_bad_config () =
  (match Farm.run { Farm.default_config with boards = 0 } mk_build with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "boards=0 accepted");
  match Farm.run { Farm.default_config with sync_every = 0 } mk_build with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "sync_every=0 accepted"


(* --- cooperative trace determinism -------------------------------------- *)

module Obs = Eof_obs.Obs

let test_cooperative_trace_deterministic () =
  (* Two identical cooperative runs must emit byte-identical JSONL event
     streams: timestamps come from board virtual clocks, never the host. *)
  let run () =
    let buf = Buffer.create 4096 in
    let bus = Obs.create () in
    Obs.add_sink bus
      (Obs.sink (fun ~t ~board ~tenant ev ->
           Buffer.add_string buf (Obs.event_to_json ~t ~board ~tenant ev);
           Buffer.add_char buf '\n'));
    let config =
      {
        Farm.default_config with
        boards = 2;
        sync_every = 15;
        base = { Campaign.default_config with iterations = 90; seed = 13L };
      }
    in
    match Farm.run ~obs:bus config mk_build with
    | Error e -> Alcotest.fail (Eof_util.Eof_error.to_string e)
    | Ok o -> (farm_digest o, Buffer.contents buf)
  in
  let d1, t1 = run () in
  let d2, t2 = run () in
  Alcotest.(check bool) "traces non-empty" true (String.length t1 > 0);
  Alcotest.(check bool) "traces byte-identical" true (String.equal t1 t2);
  Alcotest.(check bool) "outcomes identical" true (d1 = d2);
  (* The stream parses back and carries both boards plus epoch syncs. *)
  let s = Eof_obs.Trace.summarize (List.to_seq (String.split_on_char '\n' t1)) in
  Alcotest.(check int) "no unparseable lines" 0 s.Eof_obs.Trace.bad_lines;
  Alcotest.(check int) "both boards on the trace" 2 s.Eof_obs.Trace.boards;
  Alcotest.(check int) "payload events" 90 s.Eof_obs.Trace.payloads;
  Alcotest.(check bool) "epoch syncs on the trace" true
    (s.Eof_obs.Trace.coverage_final <> None)

let test_farm_obs_does_not_perturb () =
  (* Full event capture must not change the farm's outcome. *)
  let config =
    {
      Farm.default_config with
      boards = 2;
      sync_every = 15;
      base = { Campaign.default_config with iterations = 90; seed = 13L };
    }
  in
  let bare =
    match Farm.run config mk_build with Ok o -> farm_digest o | Error e -> Alcotest.fail (Eof_util.Eof_error.to_string e)
  in
  let bus = Obs.create () in
  let sink, events = Obs.memory_sink () in
  Obs.add_sink bus sink;
  let observed =
    match Farm.run ~obs:bus config mk_build with
    | Ok o -> farm_digest o
    | Error e -> Alcotest.fail (Eof_util.Eof_error.to_string e)
  in
  Alcotest.(check bool) "observed farm outcome identical" true (bare = observed);
  Alcotest.(check bool) "events captured" true (List.length (events ()) > 0)

let suite =
  [
    Alcotest.test_case "step loop equals run" `Quick test_step_loop_equals_run;
    Alcotest.test_case "boards:1 equals Campaign.run" `Quick
      test_one_board_farm_equals_campaign;
    Alcotest.test_case "cooperative backend deterministic" `Quick
      test_cooperative_deterministic;
    Alcotest.test_case "global state is a union" `Quick test_global_state_is_a_union;
    Alcotest.test_case "domain backend smoke" `Quick test_domains_backend_smoke;
    Alcotest.test_case "bad farm config rejected" `Quick test_farm_rejects_bad_config;
    Alcotest.test_case "cooperative trace deterministic" `Quick
      test_cooperative_trace_deterministic;
    Alcotest.test_case "obs does not perturb the farm" `Quick
      test_farm_obs_does_not_perturb;
  ]
