open Eof_os
module Campaign = Eof_core.Campaign
module Bufgen = Eof_baselines.Bufgen

let test_bufgen_bounds () =
  let rng = Eof_util.Rng.create 1L in
  let g = Bufgen.create ~rng ~max_len:64 in
  for _ = 1 to 200 do
    let b = Bufgen.fresh g in
    Alcotest.(check bool) "fresh bounded" true
      (String.length b >= 1 && String.length b <= 64);
    let h = Bufgen.havoc g b in
    Alcotest.(check bool) "havoc bounded" true
      (String.length h >= 1 && String.length h <= 64)
  done

let test_bufgen_corpus () =
  let rng = Eof_util.Rng.create 2L in
  let store = Bufgen.Corpus.create ~rng in
  Alcotest.(check bool) "add" true (Bufgen.Corpus.add store "abc");
  Alcotest.(check bool) "dup" false (Bufgen.Corpus.add store "abc");
  Alcotest.(check int) "size" 1 (Bufgen.Corpus.size store);
  Alcotest.(check (option string)) "pick" (Some "abc") (Bufgen.Corpus.pick store)

let test_gustave_genome_decode () =
  let build = Eof_baselines.Gustave.build_for Pokos.spec in
  let table = Osbuild.api_signatures build in
  let n = List.length table.Eof_rtos.Api.entries in
  (* Empty genome -> empty program; decode is total over random bytes. *)
  Alcotest.(check int) "empty" 0
    (List.length (Eof_baselines.Gustave.decode_genome ~table ""));
  let rng = Eof_util.Rng.create 3L in
  for _ = 1 to 100 do
    let genome = Bytes.unsafe_to_string (Eof_util.Rng.bytes rng (Eof_util.Rng.int rng 128)) in
    let prog = Eof_baselines.Gustave.decode_genome ~table genome in
    List.iter
      (fun (c : Eof_agent.Wire.call) ->
        Alcotest.(check bool) "api in range" true (c.Eof_agent.Wire.api_index < n))
      prog;
    (* The decoded program must be wire-encodable (refs are backward). *)
    match Eof_agent.Wire.encode ~endianness:Eof_hw.Arch.Little prog with
    | Ok _ -> ()
    | Error e -> Alcotest.fail e
  done

let test_tardis_runs_and_is_weaker_monitored () =
  let build = Eof_baselines.Tardis.build_for Zephyr.spec in
  Alcotest.(check string) "emulated board" "qemu-mps2-an385"
    (Eof_hw.Board.profile (Osbuild.board build)).Eof_hw.Board.name;
  match Eof_baselines.Tardis.run ~seed:3L ~iterations:300 build with
  | Error e -> Alcotest.fail (Eof_util.Eof_error.to_string e)
  | Ok o ->
    Alcotest.(check bool) "coverage" true (o.Campaign.coverage > 0);
    Alcotest.(check int) "iterations" 300 o.Campaign.iterations_done;
    (* Tardis has no exception/log monitor: every crash it records is a
       timeout-style observation. *)
    List.iter
      (fun (c : Eof_core.Crash.t) ->
        Alcotest.(check string) "timeout-only" "timeout"
          (Eof_core.Crash.monitor_name c.Eof_core.Crash.detected_by))
      o.Campaign.crashes

let test_tardis_spec_subset () =
  List.iter
    (fun os ->
      let unsupported = Eof_baselines.Tardis.unsupported_calls os in
      Alcotest.(check bool) (os ^ " has a reduced spec") true
        (os = "PoKOS" || unsupported <> []))
    [ "Zephyr"; "RT-Thread"; "NuttX"; "FreeRTOS"; "PoKOS" ]

let test_shift_freertos_only () =
  let zephyr = Osbuild.make ~board_profile:Eof_hw.Profiles.stm32f4_disco Zephyr.spec in
  (match Eof_baselines.Shift.run ~seed:1L ~iterations:10 ~entry_api:"json_parse" zephyr with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "SHIFT accepted a non-FreeRTOS target");
  let frt =
    Osbuild.make
      ~instrument:(Osbuild.Instrument_only [ Freertos.json_module ])
      ~board_profile:Eof_hw.Profiles.esp32_devkitc Freertos.spec
  in
  match Eof_baselines.Shift.run ~seed:1L ~iterations:150 ~entry_api:"json_parse" frt with
  | Error e -> Alcotest.fail (Eof_util.Eof_error.to_string e)
  | Ok o ->
    Alcotest.(check bool) "edge feedback finds coverage" true (o.Campaign.coverage > 0);
    Alcotest.(check bool) "corpus grows" true (o.Campaign.corpus_size > 0)

let test_gdbfuzz_runs () =
  let build =
    Osbuild.make
      ~instrument:(Osbuild.Instrument_only [ Freertos.http_module ])
      ~board_profile:Eof_hw.Profiles.esp32_devkitc Freertos.spec
  in
  match
    Eof_baselines.Gdbfuzz.run ~seed:2L ~iterations:150 ~entry_api:"http_request"
      ~sample_modules:[ Freertos.http_module ] build
  with
  | Error e -> Alcotest.fail (Eof_util.Eof_error.to_string e)
  | Ok o ->
    Alcotest.(check bool) "coverage measured" true (o.Campaign.coverage > 0);
    Alcotest.(check int) "iterations" 150 o.Campaign.iterations_done

let test_gustave_runs () =
  let build = Eof_baselines.Gustave.build_for Pokos.spec in
  match Eof_baselines.Gustave.run ~seed:4L ~iterations:200 build with
  | Error e -> Alcotest.fail (Eof_util.Eof_error.to_string e)
  | Ok o ->
    Alcotest.(check bool) "coverage" true (o.Campaign.coverage > 0);
    Alcotest.(check bool) "executed" true (o.Campaign.executed_programs > 0)

let suite =
  [
    Alcotest.test_case "bufgen bounds" `Quick test_bufgen_bounds;
    Alcotest.test_case "bufgen corpus" `Quick test_bufgen_corpus;
    Alcotest.test_case "gustave genome decode" `Quick test_gustave_genome_decode;
    Alcotest.test_case "tardis runs (timeout-only monitors)" `Quick
      test_tardis_runs_and_is_weaker_monitored;
    Alcotest.test_case "tardis spec subset" `Quick test_tardis_spec_subset;
    Alcotest.test_case "shift freertos-only" `Quick test_shift_freertos_only;
    Alcotest.test_case "gdbfuzz runs" `Quick test_gdbfuzz_runs;
    Alcotest.test_case "gustave runs" `Quick test_gustave_runs;
  ]
