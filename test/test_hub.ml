module Protocol = Eof_hub.Protocol
module Tenant = Eof_hub.Tenant
module Shard = Eof_hub.Shard
module Hub = Eof_hub.Hub
module Worker = Eof_hub.Worker
module Inproc = Eof_hub.Inproc
module Crash = Eof_core.Crash
module Targets = Eof_expt.Targets
module Crc32 = Eof_util.Crc32

let resolve os =
  match Targets.find os with
  | None -> Error (Printf.sprintf "unknown OS %s" os)
  | Some target ->
    let build = Targets.build_hw target in
    let table = Eof_os.Osbuild.api_signatures build in
    (match Eof_spec.Synth.validated_of_api table with
    | Error e -> Error e
    | Ok spec ->
      Ok { Worker.mk_build = (fun _ -> Targets.build_hw target); spec; table })

let hub_resolve os =
  Result.map
    (fun (t : Worker.target) -> { Hub.spec = t.Worker.spec; table = t.Worker.table })
    (resolve os)

let sample_crash ?(operation = "k_sem_take") ?(os = "Zephyr") () =
  {
    Crash.os;
    kind = Crash.Kernel_panic;
    operation;
    scope = "kernel/sync";
    message = "boom at 0xdeadbeef";
    backtrace = [ "k_sem_take"; "z_impl_k_sem_take"; "arch_irq_unlock" ];
    detected_by = Crash.Log_monitor;
    program = "0: k_sem_take(r0, 100)";
    iteration = 42;
  }

let sample_tenant =
  {
    Tenant.default with
    Tenant.tenant = "alice";
    os = "Zephyr";
    seed = 7L;
    iterations = 40;
    farms = 2;
  }

(* --- codec: every message kind round-trips ------------------------------ *)

let every_kind =
  [
    Protocol.Submit sample_tenant;
    Protocol.Accept { campaign = 3; tenant = "alice" };
    Protocol.Reject { tenant = "bob"; reason = "tenant already has a campaign" };
    Protocol.Shard_assign
      {
        Shard.campaign = 3;
        tenant = "alice";
        os = "Zephyr";
        shard = 1;
        shards = 2;
        seed = 0x1234_5678_9ABC_DEF0L;
        iterations = 21;
        boards = 2;
        sync_every = 25;
        backend = Eof_agent.Machine.Native;
        reset_policy = Eof_core.Campaign.Snapshot;
        schedule = Eof_core.Corpus.Energy;
        gen_mode = Eof_core.Gen.Compiled;
      };
    Protocol.Corpus_push
      { campaign = 3; shard = 0; progs = [ "\x00\x01\xffwire"; "" ] };
    Protocol.Corpus_pull { campaign = 3; shard = 1; progs = [ "seed\x00binary" ] };
    Protocol.Crash_report { campaign = 3; shard = 1; crash = sample_crash () };
    Protocol.Heartbeat
      {
        campaign = 3;
        shard = 0;
        executed = 120;
        coverage = 77;
        edge_capacity = 512;
        virtual_s = 1.625;
        bitmap = "\x00\xff\x80\x01";
      };
    Protocol.Status_req;
    Protocol.Status
      [
        {
          Protocol.campaign = 3;
          tenant = "alice";
          os = "Zephyr";
          finished = false;
          shards = 2;
          shards_done = 1;
          executed = 120;
          coverage = 77;
          crashes = 2;
        };
      ];
    Protocol.Cancel { campaign = 3 };
    Protocol.Shard_done
      {
        campaign = 3;
        shard = 1;
        executed = 21;
        iterations = 21;
        crash_events = 4;
        virtual_s = 2.5;
      };
    Protocol.Campaign_done
      { campaign = 3; tenant = "alice"; digest = "digest tenant alice crc=0" };
  ]

let test_codec_roundtrip () =
  List.iter
    (fun msg ->
      match Protocol.decode (Protocol.encode msg) with
      | Ok decoded ->
        Alcotest.(check bool)
          (Printf.sprintf "%s round-trips" (Protocol.kind_name msg))
          true (decoded = msg)
      | Error e ->
        Alcotest.fail
          (Printf.sprintf "%s: %s" (Protocol.kind_name msg)
             (Protocol.error_to_string e)))
    every_kind

let check_error name expected = function
  | Error e when e = expected -> ()
  | Error e ->
    Alcotest.fail (Printf.sprintf "%s: got %s" name (Protocol.error_to_string e))
  | Ok _ -> Alcotest.fail (Printf.sprintf "%s: decoded a corrupt frame" name)

let test_codec_rejections () =
  let frame = Protocol.encode (Protocol.Accept { campaign = 9; tenant = "alice" }) in
  (* every strict prefix is Truncated, never a parse *)
  for n = 0 to String.length frame - 1 do
    check_error
      (Printf.sprintf "prefix of %d bytes" n)
      Protocol.Truncated
      (Protocol.decode (String.sub frame 0 n))
  done;
  (* flip one payload byte: CRC catches it *)
  let corrupt = Bytes.of_string frame in
  Bytes.set corrupt Protocol.header_bytes
    (Char.chr (Char.code (Bytes.get corrupt Protocol.header_bytes) lxor 0x40));
  check_error "payload bit flip" Protocol.Bad_crc
    (Protocol.decode (Bytes.to_string corrupt));
  (* wrong magic *)
  let bad_magic = Bytes.of_string frame in
  Bytes.set bad_magic 0 'X';
  check_error "bad magic" Protocol.Bad_magic
    (Protocol.decode (Bytes.to_string bad_magic));
  (* trailing bytes are an error, not ignored *)
  (match Protocol.decode (frame ^ "\x00") with
  | Error (Protocol.Malformed _) -> ()
  | _ -> Alcotest.fail "trailing byte accepted");
  (* future version: patch the version field and re-sign the frame, so
     only the version check can object *)
  let future = Bytes.of_string frame in
  Bytes.set future 4 (Char.chr (Protocol.version + 1));
  let crc =
    Crc32.digest_string (Bytes.sub_string future 4 (Bytes.length future - 8))
  in
  Bytes.set_int32_le future (Bytes.length future - 4) crc;
  check_error "future version"
    (Protocol.Bad_version (Protocol.version + 1))
    (Protocol.decode (Bytes.to_string future))

let test_frame_size () =
  let frame = Protocol.encode Protocol.Status_req in
  Alcotest.(check bool) "short prefix: unknown" true
    (Protocol.frame_size (String.sub frame 0 4) = Ok None);
  Alcotest.(check bool) "full header: size known" true
    (Protocol.frame_size frame = Ok (Some (String.length frame)))

(* --- tenant spec parsing ------------------------------------------------ *)

let test_tenant_spec () =
  (match Tenant.of_spec "name=alice,os=Zephyr,seed=7,iterations=400,farms=2" with
  | Ok c ->
    Alcotest.(check string) "name" "alice" c.Tenant.tenant;
    Alcotest.(check int) "farms" 2 c.Tenant.farms;
    Alcotest.(check int) "iterations" 400 c.Tenant.iterations
  | Error e -> Alcotest.fail e);
  (match Tenant.of_spec "name=bad name" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "space in tenant name accepted");
  (match Tenant.of_spec "nonsense" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "non key=value accepted")

(* --- sharding ----------------------------------------------------------- *)

let test_shard_plan () =
  let plan =
    Shard.plan ~campaign:5 { sample_tenant with Tenant.iterations = 41; farms = 3 }
  in
  Alcotest.(check int) "one assignment per farm" 3 (List.length plan);
  Alcotest.(check int) "budget preserved" 41
    (List.fold_left (fun acc (a : Shard.assignment) -> acc + a.Shard.iterations) 0 plan);
  let a0 = List.nth plan 0 in
  Alcotest.(check bool) "shard 0 keeps the tenant seed" true
    (a0.Shard.seed = sample_tenant.Tenant.seed);
  let seeds = List.map (fun (a : Shard.assignment) -> a.Shard.seed) plan in
  Alcotest.(check int) "derived seeds distinct" 3
    (List.length (List.sort_uniq compare seeds))

(* --- global crash dedup ------------------------------------------------- *)

let submit_ok hub ~client config =
  let actions = Hub.handle_client hub ~client (Protocol.Submit config) in
  match
    List.find_map
      (function
        | Hub.To_client (_, Protocol.Accept { campaign; _ }) -> Some campaign
        | Hub.To_client (_, Protocol.Reject { reason; _ }) -> Alcotest.fail reason
        | _ -> None)
      actions
  with
  | Some id -> id
  | None -> Alcotest.fail "no Accept for submission"

let test_global_crash_dedup () =
  let hub = Hub.create ~farms:2 ~resolve:hub_resolve () in
  let alice = submit_ok hub ~client:0 { sample_tenant with Tenant.farms = 2 } in
  let crash = sample_crash () in
  (* the same bug reported by both farms of alice's campaign *)
  ignore
    (Hub.handle_farm hub ~farm:0
       (Protocol.Crash_report { campaign = alice; shard = 0; crash }));
  ignore
    (Hub.handle_farm hub ~farm:1
       (Protocol.Crash_report { campaign = alice; shard = 1; crash }));
  Alcotest.(check int) "two farms, one fleet entry" 1 (Hub.crashes_deduped hub);
  (* a different bug is a different entry *)
  ignore
    (Hub.handle_farm hub ~farm:0
       (Protocol.Crash_report
          { campaign = alice; shard = 0; crash = sample_crash ~operation:"k_mutex_lock" () }));
  Alcotest.(check int) "distinct bug counted" 2 (Hub.crashes_deduped hub);
  (* a second tenant hitting the first bug: still one entry, both
     tenants attributed, and each tenant's own crash list keeps it *)
  let bob =
    submit_ok hub ~client:1
      { sample_tenant with Tenant.tenant = "bob"; farms = 1; seed = 11L }
  in
  ignore
    (Hub.handle_farm hub ~farm:0
       (Protocol.Crash_report { campaign = bob; shard = 0; crash }));
  Alcotest.(check int) "second tenant, same bug, same entry" 2
    (Hub.crashes_deduped hub);
  (match Hub.fleet_crashes hub with
  | (first, tenants) :: _ ->
    Alcotest.(check string) "entry keeps the first record" crash.Crash.operation
      first.Crash.operation;
    Alcotest.(check (list string)) "attribution order" [ "alice"; "bob" ] tenants
  | [] -> Alcotest.fail "fleet crash set empty");
  let crashes_of name =
    List.find_map
      (fun (r : Protocol.status_row) ->
        if r.Protocol.tenant = name then Some r.Protocol.crashes else None)
      (Hub.status hub)
  in
  Alcotest.(check (option int)) "alice sees both bugs" (Some 2) (crashes_of "alice");
  Alcotest.(check (option int)) "bob sees his one" (Some 1) (crashes_of "bob")

(* --- the deterministic fleet soak --------------------------------------- *)

let fleet_tenants =
  [
    { sample_tenant with Tenant.iterations = 120; farms = 2 };
    {
      sample_tenant with
      Tenant.tenant = "bob";
      os = "FreeRTOS";
      seed = 11L;
      iterations = 120;
      farms = 2;
    };
  ]

let run_fleet () =
  match Inproc.run ~farms:2 fleet_tenants ~resolve with
  | Ok o -> o
  | Error e -> Alcotest.fail e

let test_inproc_deterministic () =
  let a = run_fleet () and b = run_fleet () in
  Alcotest.(check string) "fleet digest byte-identical" a.Inproc.fleet_digest
    b.Inproc.fleet_digest;
  Alcotest.(check string) "summaries byte-identical" (Inproc.summary a)
    (Inproc.summary b);
  List.iter2
    (fun (x : Inproc.tenant_result) (y : Inproc.tenant_result) ->
      Alcotest.(check string)
        (Printf.sprintf "tenant %s digest" x.Inproc.tenant)
        x.Inproc.digest y.Inproc.digest)
    a.Inproc.tenants b.Inproc.tenants

let test_inproc_fleet_results () =
  let o = run_fleet () in
  Alcotest.(check int) "both tenants finished" 2 (List.length o.Inproc.tenants);
  Alcotest.(check int) "full budget executed" 240 o.Inproc.payloads;
  Alcotest.(check bool) "corpus sync transplanted at least one seed" true
    (o.Inproc.transplants >= 1);
  List.iter
    (fun (r : Inproc.tenant_result) ->
      Alcotest.(check int)
        (Printf.sprintf "tenant %s executed its slice" r.Inproc.tenant)
        120 r.Inproc.executed;
      Alcotest.(check bool)
        (Printf.sprintf "tenant %s found coverage" r.Inproc.tenant)
        true
        (r.Inproc.coverage > 0))
    o.Inproc.tenants;
  (* the fleet set can never exceed the sum of per-tenant sets, and
     with sync on, sibling shards of one tenant overlap heavily *)
  let tenant_sum =
    List.fold_left (fun acc (r : Inproc.tenant_result) -> acc + r.Inproc.crashes) 0
      o.Inproc.tenants
  in
  Alcotest.(check bool) "fleet dedup is global" true
    (o.Inproc.crashes_deduped <= tenant_sum)

let test_cross_personality_transplants () =
  (* A tenant alone only gets same-personality relay between its own
     shards. Two personalities side by side add retyped seeds on top,
     so the joint fleet must out-transplant the sum of the solo runs —
     and stay deterministic while doing it. *)
  let solo t =
    match Inproc.run ~farms:2 [ t ] ~resolve with
    | Ok o -> o.Inproc.transplants
    | Error e -> Alcotest.fail e
  in
  let same_personality = List.fold_left (fun acc t -> acc + solo t) 0 fleet_tenants in
  let joint = run_fleet () in
  Alcotest.(check bool)
    (Printf.sprintf "retyped seeds cross personalities (%d joint vs %d solo)"
       joint.Inproc.transplants same_personality)
    true
    (joint.Inproc.transplants > same_personality);
  let again = run_fleet () in
  Alcotest.(check int) "cross-personality relay is deterministic"
    joint.Inproc.transplants again.Inproc.transplants;
  Alcotest.(check string) "fleet digest unmoved by rerun" joint.Inproc.fleet_digest
    again.Inproc.fleet_digest

let test_corpus_sync_off () =
  match
    Inproc.run ~farms:2 ~corpus_sync:false fleet_tenants ~resolve
  with
  | Error e -> Alcotest.fail e
  | Ok o ->
    Alcotest.(check int) "no transplants without sync" 0 o.Inproc.transplants;
    Alcotest.(check int) "budget still executed" 240 o.Inproc.payloads

let suite =
  [
    Alcotest.test_case "codec round-trips every kind" `Quick test_codec_roundtrip;
    Alcotest.test_case "codec rejects corrupt frames" `Quick test_codec_rejections;
    Alcotest.test_case "frame size detection" `Quick test_frame_size;
    Alcotest.test_case "tenant spec parsing" `Quick test_tenant_spec;
    Alcotest.test_case "shard planning" `Quick test_shard_plan;
    Alcotest.test_case "global crash dedup with attribution" `Quick
      test_global_crash_dedup;
    Alcotest.test_case "inproc fleet is deterministic" `Quick
      test_inproc_deterministic;
    Alcotest.test_case "inproc fleet results" `Quick test_inproc_fleet_results;
    Alcotest.test_case "cross-personality transplants" `Quick
      test_cross_personality_transplants;
    Alcotest.test_case "corpus sync off" `Quick test_corpus_sync_off;
  ]
