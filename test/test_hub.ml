module Protocol = Eof_hub.Protocol
module Tenant = Eof_hub.Tenant
module Shard = Eof_hub.Shard
module Hub = Eof_hub.Hub
module Worker = Eof_hub.Worker
module Inproc = Eof_hub.Inproc
module Crash = Eof_core.Crash
module Targets = Eof_expt.Targets
module Crc32 = Eof_util.Crc32
module Rng = Eof_util.Rng

let resolve os =
  match Targets.find os with
  | None -> Error (Printf.sprintf "unknown OS %s" os)
  | Some target ->
    let build = Targets.build_hw target in
    let table = Eof_os.Osbuild.api_signatures build in
    (match Eof_spec.Synth.validated_of_api table with
    | Error e -> Error e
    | Ok spec ->
      Ok { Worker.mk_build = (fun _ -> Targets.build_hw target); spec; table })

let hub_resolve os =
  Result.map
    (fun (t : Worker.target) -> { Hub.spec = t.Worker.spec; table = t.Worker.table })
    (resolve os)

let sample_crash ?(operation = "k_sem_take") ?(os = "Zephyr") () =
  {
    Crash.os;
    kind = Crash.Kernel_panic;
    operation;
    scope = "kernel/sync";
    message = "boom at 0xdeadbeef";
    backtrace = [ "k_sem_take"; "z_impl_k_sem_take"; "arch_irq_unlock" ];
    detected_by = Crash.Log_monitor;
    program = "0: k_sem_take(r0, 100)";
    iteration = 42;
  }

let sample_tenant =
  {
    Tenant.default with
    Tenant.tenant = "alice";
    os = "Zephyr";
    seed = 7L;
    iterations = 40;
    farms = 2;
  }

(* --- codec: every message kind round-trips ------------------------------ *)

let every_kind =
  [
    Protocol.Submit sample_tenant;
    Protocol.Accept { campaign = 3; tenant = "alice" };
    Protocol.Reject { tenant = "bob"; reason = "tenant already has a campaign" };
    Protocol.Shard_assign
      {
        Shard.campaign = 3;
        tenant = "alice";
        os = "Zephyr";
        shard = 1;
        shards = 2;
        epoch = 4;
        seed = 0x1234_5678_9ABC_DEF0L;
        iterations = 21;
        boards = 2;
        sync_every = 25;
        backend = Eof_agent.Machine.Native;
        reset_policy = Eof_core.Campaign.Snapshot;
        schedule = Eof_core.Corpus.Energy;
        gen_mode = Eof_core.Gen.Compiled;
      };
    Protocol.Corpus_push
      { campaign = 3; shard = 0; epoch = 1; progs = [ "\x00\x01\xffwire"; "" ] };
    Protocol.Corpus_pull { campaign = 3; shard = 1; progs = [ "seed\x00binary" ] };
    Protocol.Crash_report
      { campaign = 3; shard = 1; epoch = 2; crash = sample_crash () };
    Protocol.Heartbeat
      {
        campaign = 3;
        shard = 0;
        epoch = 1;
        executed = 120;
        coverage = 77;
        edge_capacity = 512;
        virtual_s = 1.625;
        bitmap = "\x00\xff\x80\x01";
      };
    Protocol.Status_req;
    Protocol.Status
      {
        rows =
          [
            {
              Protocol.campaign = 3;
              tenant = "alice";
              os = "Zephyr";
              finished = false;
              shards = 2;
              shards_done = 1;
              executed = 120;
              coverage = 77;
              crashes = 2;
            };
          ];
        workers =
          [
            { Protocol.worker = 0; name = "pit-4"; alive = true; leases = 2 };
            { Protocol.worker = 1; name = "pit-9"; alive = false; leases = 0 };
          ];
      };
    Protocol.Cancel { campaign = 3 };
    Protocol.Shard_done
      {
        campaign = 3;
        shard = 1;
        epoch = 3;
        executed = 21;
        iterations = 21;
        crash_events = 4;
        virtual_s = 2.5;
      };
    Protocol.Campaign_done
      { campaign = 3; tenant = "alice"; digest = "digest tenant alice crc=0" };
    Protocol.Worker_hello { name = "pit-4" };
    Protocol.Worker_welcome { worker = 7; heartbeat_timeout_s = 30. };
    Protocol.Shard_revoke { campaign = 3; shard = 1; epoch = 2 };
    Protocol.Worker_ping { worker = 7 };
    Protocol.Heartbeat_ack { worker = 7 };
  ]

let test_codec_roundtrip () =
  List.iter
    (fun msg ->
      match Protocol.decode (Protocol.encode msg) with
      | Ok decoded ->
        Alcotest.(check bool)
          (Printf.sprintf "%s round-trips" (Protocol.kind_name msg))
          true (decoded = msg)
      | Error e ->
        Alcotest.fail
          (Printf.sprintf "%s: %s" (Protocol.kind_name msg)
             (Protocol.error_to_string e)))
    every_kind

let check_error name expected = function
  | Error e when e = expected -> ()
  | Error e ->
    Alcotest.fail (Printf.sprintf "%s: got %s" name (Protocol.error_to_string e))
  | Ok _ -> Alcotest.fail (Printf.sprintf "%s: decoded a corrupt frame" name)

let test_codec_rejections () =
  (* every strict prefix of every message kind is Truncated, never a
     parse and never a crash *)
  List.iter
    (fun msg ->
      let frame = Protocol.encode msg in
      for n = 0 to String.length frame - 1 do
        check_error
          (Printf.sprintf "%s prefix of %d bytes" (Protocol.kind_name msg) n)
          Protocol.Truncated
          (Protocol.decode (String.sub frame 0 n))
      done)
    every_kind;
  let frame = Protocol.encode (Protocol.Accept { campaign = 9; tenant = "alice" }) in
  (* flip one payload byte: CRC catches it *)
  let corrupt = Bytes.of_string frame in
  Bytes.set corrupt Protocol.header_bytes
    (Char.chr (Char.code (Bytes.get corrupt Protocol.header_bytes) lxor 0x40));
  check_error "payload bit flip" Protocol.Bad_crc
    (Protocol.decode (Bytes.to_string corrupt));
  (* wrong magic *)
  let bad_magic = Bytes.of_string frame in
  Bytes.set bad_magic 0 'X';
  check_error "bad magic" Protocol.Bad_magic
    (Protocol.decode (Bytes.to_string bad_magic));
  (* trailing bytes are an error, not ignored *)
  (match Protocol.decode (frame ^ "\x00") with
  | Error (Protocol.Malformed _) -> ()
  | _ -> Alcotest.fail "trailing byte accepted");
  (* future version: patch the version field and re-sign the frame, so
     only the version check can object *)
  let future = Bytes.of_string frame in
  Bytes.set future 4 (Char.chr (Protocol.version + 1));
  let crc =
    Crc32.digest_string (Bytes.sub_string future 4 (Bytes.length future - 8))
  in
  Bytes.set_int32_le future (Bytes.length future - 4) crc;
  check_error "future version"
    (Protocol.Bad_version (Protocol.version + 1))
    (Protocol.decode (Bytes.to_string future))

(* Adversarial input sweep: seeded random bytes through [frame_size] and
   [decode] — pure noise, noise behind a genuine magic, and re-signed
   corruptions whose CRC is valid so the payload parsers themselves take
   the hit. Anything but a typed result is a test failure (an exception
   escapes the match and kills the test case). *)
let test_codec_random_sweep () =
  let rng = Rng.create 0xC0FFEE_5EEDL in
  let random_string n = String.init n (fun _ -> Char.chr (Rng.int rng 256)) in
  let feed s =
    (match Protocol.frame_size s with Ok _ | Error _ -> ());
    match Protocol.decode s with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail "random noise decoded as a frame"
  in
  for _ = 1 to 300 do
    feed (random_string (Rng.int rng 80))
  done;
  for _ = 1 to 300 do
    feed ("EOFH" ^ random_string (Rng.int rng 80))
  done;
  List.iter
    (fun msg ->
      let frame = Protocol.encode msg in
      for _ = 1 to 25 do
        let b = Bytes.of_string frame in
        for _ = 1 to 1 + Rng.int rng 3 do
          let i = 4 + Rng.int rng (Bytes.length b - 8) in
          Bytes.set b i (Char.chr (Rng.int rng 256))
        done;
        (* re-sign so the corruption reaches past the CRC check *)
        let crc =
          Crc32.digest_string (Bytes.sub_string b 4 (Bytes.length b - 8))
        in
        Bytes.set_int32_le b (Bytes.length b - 4) crc;
        let s = Bytes.to_string b in
        (match Protocol.frame_size s with Ok _ | Error _ -> ());
        match Protocol.decode s with Ok _ | Error _ -> ()
      done)
    every_kind

let test_frame_size () =
  let frame = Protocol.encode Protocol.Status_req in
  Alcotest.(check bool) "short prefix: unknown" true
    (Protocol.frame_size (String.sub frame 0 4) = Ok None);
  Alcotest.(check bool) "full header: size known" true
    (Protocol.frame_size frame = Ok (Some (String.length frame)))

(* --- tenant spec parsing ------------------------------------------------ *)

let test_tenant_spec () =
  (match Tenant.of_spec "name=alice,os=Zephyr,seed=7,iterations=400,farms=2" with
  | Ok c ->
    Alcotest.(check string) "name" "alice" c.Tenant.tenant;
    Alcotest.(check int) "farms" 2 c.Tenant.farms;
    Alcotest.(check int) "iterations" 400 c.Tenant.iterations
  | Error e -> Alcotest.fail e);
  (match Tenant.of_spec "name=bad name" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "space in tenant name accepted");
  (match Tenant.of_spec "nonsense" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "non key=value accepted")

(* --- sharding ----------------------------------------------------------- *)

let test_shard_plan () =
  let plan =
    Shard.plan ~campaign:5 { sample_tenant with Tenant.iterations = 41; farms = 3 }
  in
  Alcotest.(check int) "one assignment per farm" 3 (List.length plan);
  Alcotest.(check int) "budget preserved" 41
    (List.fold_left (fun acc (a : Shard.assignment) -> acc + a.Shard.iterations) 0 plan);
  let a0 = List.nth plan 0 in
  Alcotest.(check bool) "shard 0 keeps the tenant seed" true
    (a0.Shard.seed = sample_tenant.Tenant.seed);
  Alcotest.(check bool) "leases born at epoch 1" true
    (List.for_all (fun (a : Shard.assignment) -> a.Shard.epoch = 1) plan);
  let seeds = List.map (fun (a : Shard.assignment) -> a.Shard.seed) plan in
  Alcotest.(check int) "derived seeds distinct" 3
    (List.length (List.sort_uniq compare seeds))

(* --- hub unit tests: registry, dedup, fencing --------------------------- *)

let hello_ok hub name =
  match Hub.hello hub ~now:0. ~name with
  | Ok (wid, _actions) -> wid
  | Error e -> Alcotest.fail e

let submit_ok hub ~client config =
  let actions = Hub.handle_client hub ~client (Protocol.Submit config) in
  match
    List.find_map
      (function
        | Hub.To_client (_, Protocol.Accept { campaign; _ }) -> Some campaign
        | Hub.To_client (_, Protocol.Reject { reason; _ }) -> Alcotest.fail reason
        | _ -> None)
      actions
  with
  | Some id -> id
  | None -> Alcotest.fail "no Accept for submission"

let test_global_crash_dedup () =
  let hub = Hub.create ~resolve:hub_resolve () in
  let w0 = hello_ok hub "w0" in
  let w1 = hello_ok hub "w1" in
  let alice = submit_ok hub ~client:0 { sample_tenant with Tenant.farms = 2 } in
  let crash = sample_crash () in
  let report ~worker ~shard crash =
    ignore
      (Hub.handle_worker hub ~now:1. ~worker
         (Protocol.Crash_report { campaign = alice; shard; epoch = 1; crash })
        : Hub.action list)
  in
  (* the same bug reported by both workers of alice's campaign *)
  report ~worker:w0 ~shard:0 crash;
  report ~worker:w1 ~shard:1 crash;
  Alcotest.(check int) "two workers, one fleet entry" 1 (Hub.crashes_deduped hub);
  (* a different bug is a different entry *)
  report ~worker:w0 ~shard:0 (sample_crash ~operation:"k_mutex_lock" ());
  Alcotest.(check int) "distinct bug counted" 2 (Hub.crashes_deduped hub);
  (* a second tenant hitting the first bug: still one entry, both
     tenants attributed, and each tenant's own crash list keeps it *)
  let bob =
    submit_ok hub ~client:1
      { sample_tenant with Tenant.tenant = "bob"; farms = 1; seed = 11L }
  in
  (* bob's one shard went to the least-loaded worker: both hold one of
     alice's leases, so the tie falls to the lowest id *)
  ignore
    (Hub.handle_worker hub ~now:1. ~worker:w0
       (Protocol.Crash_report { campaign = bob; shard = 0; epoch = 1; crash })
      : Hub.action list);
  Alcotest.(check int) "second tenant, same bug, same entry" 2
    (Hub.crashes_deduped hub);
  (match Hub.fleet_crashes hub with
  | (first, tenants) :: _ ->
    Alcotest.(check string) "entry keeps the first record" crash.Crash.operation
      first.Crash.operation;
    Alcotest.(check (list string)) "attribution order" [ "alice"; "bob" ] tenants
  | [] -> Alcotest.fail "fleet crash set empty");
  let crashes_of name =
    List.find_map
      (fun (r : Protocol.status_row) ->
        if r.Protocol.tenant = name then Some r.Protocol.crashes else None)
      (Hub.status hub)
  in
  Alcotest.(check (option int)) "alice sees both bugs" (Some 2) (crashes_of "alice");
  Alcotest.(check (option int)) "bob sees his one" (Some 1) (crashes_of "bob")

let test_lease_fencing () =
  let hub = Hub.create ~resolve:hub_resolve () in
  let w0 = hello_ok hub "w0" in
  let w1 = hello_ok hub "w1" in
  (* one shard, owned by w0 (both workers idle, lowest id wins) *)
  let id = submit_ok hub ~client:0 { sample_tenant with Tenant.farms = 1 } in
  let crash = sample_crash () in
  let report ~worker ~epoch =
    ignore
      (Hub.handle_worker hub ~now:1. ~worker
         (Protocol.Crash_report { campaign = id; shard = 0; epoch; crash })
        : Hub.action list)
  in
  report ~worker:w0 ~epoch:99;
  Alcotest.(check int) "stale epoch fenced" 1 (Hub.fenced hub);
  Alcotest.(check int) "fenced crash not recorded" 0 (Hub.crashes_deduped hub);
  report ~worker:w1 ~epoch:1;
  Alcotest.(check int) "non-owner fenced" 2 (Hub.fenced hub);
  report ~worker:w0 ~epoch:1;
  Alcotest.(check int) "owner at current epoch admitted" 1 (Hub.crashes_deduped hub);
  Alcotest.(check int) "admission is not a fence" 2 (Hub.fenced hub);
  (* death: the lease is revoked at its old epoch and reassigned to the
     survivor at a bumped one; the zombie's flushes are fenced *)
  let actions = Hub.worker_lost hub ~now:2. ~worker:w0 in
  Alcotest.(check bool) "revoke names the old epoch" true
    (List.exists
       (function
         | Hub.To_worker (w, Protocol.Shard_revoke { epoch = 1; _ }) -> w = w0
         | _ -> false)
       actions);
  Alcotest.(check bool) "reassigned to the survivor at a bumped epoch" true
    (List.exists
       (function
         | Hub.To_worker (w, Protocol.Shard_assign a) ->
           w = w1 && a.Shard.epoch = 2
         | _ -> false)
       actions);
  Alcotest.(check int) "one reassignment counted" 1 (Hub.reassignments hub);
  report ~worker:w0 ~epoch:1;
  Alcotest.(check int) "zombie flush fenced" 3 (Hub.fenced hub);
  (* dead is dead: a late ping from the zombie earns no ack *)
  Alcotest.(check int) "zombie ping unanswered" 0
    (List.length
       (Hub.handle_worker hub ~now:3. ~worker:w0 (Protocol.Worker_ping { worker = w0 })))

(* --- the deterministic fleet soak --------------------------------------- *)

let fleet_tenants =
  [
    { sample_tenant with Tenant.iterations = 120; farms = 2 };
    {
      sample_tenant with
      Tenant.tenant = "bob";
      os = "FreeRTOS";
      seed = 11L;
      iterations = 120;
      farms = 2;
    };
  ]

let run_fleet () =
  match Inproc.run ~farms:2 fleet_tenants ~resolve with
  | Ok o -> o
  | Error e -> Alcotest.fail e

let test_inproc_deterministic () =
  let a = run_fleet () and b = run_fleet () in
  Alcotest.(check string) "fleet digest byte-identical" a.Inproc.fleet_digest
    b.Inproc.fleet_digest;
  Alcotest.(check string) "summaries byte-identical" (Inproc.summary a)
    (Inproc.summary b);
  List.iter2
    (fun (x : Inproc.tenant_result) (y : Inproc.tenant_result) ->
      Alcotest.(check string)
        (Printf.sprintf "tenant %s digest" x.Inproc.tenant)
        x.Inproc.digest y.Inproc.digest)
    a.Inproc.tenants b.Inproc.tenants

let test_inproc_fleet_results () =
  let o = run_fleet () in
  Alcotest.(check int) "both tenants finished" 2 (List.length o.Inproc.tenants);
  Alcotest.(check int) "full budget executed" 240 o.Inproc.payloads;
  Alcotest.(check bool) "corpus sync transplanted at least one seed" true
    (o.Inproc.transplants >= 1);
  Alcotest.(check int) "no deaths, no reassignments" 0 o.Inproc.reassignments;
  Alcotest.(check int) "no stale traffic on a healthy fleet" 0 o.Inproc.fenced;
  List.iter
    (fun (r : Inproc.tenant_result) ->
      Alcotest.(check int)
        (Printf.sprintf "tenant %s executed its slice" r.Inproc.tenant)
        120 r.Inproc.executed;
      Alcotest.(check bool)
        (Printf.sprintf "tenant %s found coverage" r.Inproc.tenant)
        true
        (r.Inproc.coverage > 0))
    o.Inproc.tenants;
  (* the fleet set can never exceed the sum of per-tenant sets, and
     with sync on, sibling shards of one tenant overlap heavily *)
  let tenant_sum =
    List.fold_left (fun acc (r : Inproc.tenant_result) -> acc + r.Inproc.crashes) 0
      o.Inproc.tenants
  in
  Alcotest.(check bool) "fleet dedup is global" true
    (o.Inproc.crashes_deduped <= tenant_sum)

let test_cross_personality_transplants () =
  (* A tenant alone only gets same-personality relay between its own
     shards. Two personalities side by side add retyped seeds on top,
     so the joint fleet must out-transplant the sum of the solo runs —
     and stay deterministic while doing it. *)
  let solo t =
    match Inproc.run ~farms:2 [ t ] ~resolve with
    | Ok o -> o.Inproc.transplants
    | Error e -> Alcotest.fail e
  in
  let same_personality = List.fold_left (fun acc t -> acc + solo t) 0 fleet_tenants in
  let joint = run_fleet () in
  Alcotest.(check bool)
    (Printf.sprintf "retyped seeds cross personalities (%d joint vs %d solo)"
       joint.Inproc.transplants same_personality)
    true
    (joint.Inproc.transplants > same_personality);
  let again = run_fleet () in
  Alcotest.(check int) "cross-personality relay is deterministic"
    joint.Inproc.transplants again.Inproc.transplants;
  Alcotest.(check string) "fleet digest unmoved by rerun" joint.Inproc.fleet_digest
    again.Inproc.fleet_digest

let test_corpus_sync_off () =
  match
    Inproc.run ~farms:2 ~corpus_sync:false fleet_tenants ~resolve
  with
  | Error e -> Alcotest.fail e
  | Ok o ->
    Alcotest.(check int) "no transplants without sync" 0 o.Inproc.transplants;
    Alcotest.(check int) "budget still executed" 240 o.Inproc.payloads

(* --- fault drills: scripted death, journal resume ----------------------- *)

let run_fleet_kill kill =
  match Inproc.run ~farms:2 ~kill fleet_tenants ~resolve with
  | Ok o -> o
  | Error e -> Alcotest.fail e

let test_worker_death_recovery () =
  (* killed after 60 steps: past the first epoch flush on each of its
     shards, so the hub has heartbeat state to write off at the revoke *)
  let o = run_fleet_kill (1, 60) in
  (* the fleet loses a worker, not a tenant *)
  Alcotest.(check int) "both tenants still finish" 2 (List.length o.Inproc.tenants);
  Alcotest.(check int) "full budget still executed" 240 o.Inproc.payloads;
  List.iter
    (fun (r : Inproc.tenant_result) ->
      Alcotest.(check int)
        (Printf.sprintf "tenant %s executed its slice" r.Inproc.tenant)
        120 r.Inproc.executed)
    o.Inproc.tenants;
  Alcotest.(check bool) "dead worker's leases were reassigned" true
    (o.Inproc.reassignments >= 1);
  Alcotest.(check bool) "the dead worker's progress was written off" true
    (o.Inproc.payloads_lost >= 1);
  Alcotest.(check bool) "recovery lag measured on the virtual clock" true
    (o.Inproc.recovery_lag > 0.)

let test_worker_death_deterministic () =
  let a = run_fleet_kill (1, 60) and b = run_fleet_kill (1, 60) in
  Alcotest.(check string) "scripted-death summaries byte-identical"
    (Inproc.summary a) (Inproc.summary b);
  Alcotest.(check string) "scripted-death fleet digest byte-identical"
    a.Inproc.fleet_digest b.Inproc.fleet_digest;
  Alcotest.(check int) "same recovery, same reassignment count"
    a.Inproc.reassignments b.Inproc.reassignments;
  Alcotest.(check int) "same recovery, same payloads lost" a.Inproc.payloads_lost
    b.Inproc.payloads_lost

let with_temp_journal f =
  let path = Filename.temp_file "eof-hub" ".journal" in
  Sys.remove path;
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

let test_journal_resume () =
  with_temp_journal @@ fun path ->
  let base = run_fleet () in
  (match
     Inproc.run ~farms:2 ~journal:path ~halt_after:60 fleet_tenants ~resolve
   with
  | Error e -> Alcotest.fail e
  | Ok h ->
    Alcotest.(check bool) "halted mid-campaign" true h.Inproc.halted;
    Alcotest.(check bool) "halted before any tenant finished" true
      (List.length h.Inproc.tenants < 2));
  match Inproc.run ~farms:2 ~journal:path fleet_tenants ~resolve with
  | Error e -> Alcotest.fail e
  | Ok resumed ->
    Alcotest.(check bool) "journal frames replayed" true
      (resumed.Inproc.replayed_frames > 0);
    Alcotest.(check bool) "resume completed" false resumed.Inproc.halted;
    Alcotest.(check string) "resumed fleet digest = uninterrupted fleet digest"
      base.Inproc.fleet_digest resumed.Inproc.fleet_digest;
    Alcotest.(check string) "resumed summary = uninterrupted summary"
      (Inproc.summary base) (Inproc.summary resumed)

let test_journal_double_restart () =
  with_temp_journal @@ fun path ->
  let base = run_fleet () in
  let halt n =
    match
      Inproc.run ~farms:2 ~journal:path ~halt_after:n fleet_tenants ~resolve
    with
    | Error e -> Alcotest.fail e
    | Ok h -> Alcotest.(check bool) "halted" true h.Inproc.halted
  in
  (* two successive crashes: the second replay must wind unfinished
     campaigns back at the same point in the frame stream the first
     restart did, or the digests drift *)
  halt 45;
  halt 120;
  match Inproc.run ~farms:2 ~journal:path fleet_tenants ~resolve with
  | Error e -> Alcotest.fail e
  | Ok resumed ->
    Alcotest.(check string) "fleet digest survives two restarts"
      base.Inproc.fleet_digest resumed.Inproc.fleet_digest;
    Alcotest.(check string) "summary survives two restarts"
      (Inproc.summary base) (Inproc.summary resumed)

let suite =
  [
    Alcotest.test_case "codec round-trips every kind" `Quick test_codec_roundtrip;
    Alcotest.test_case "codec rejects corrupt frames" `Quick test_codec_rejections;
    Alcotest.test_case "codec survives random bytes" `Quick test_codec_random_sweep;
    Alcotest.test_case "frame size detection" `Quick test_frame_size;
    Alcotest.test_case "tenant spec parsing" `Quick test_tenant_spec;
    Alcotest.test_case "shard planning" `Quick test_shard_plan;
    Alcotest.test_case "global crash dedup with attribution" `Quick
      test_global_crash_dedup;
    Alcotest.test_case "lease epochs fence stale traffic" `Quick test_lease_fencing;
    Alcotest.test_case "inproc fleet is deterministic" `Quick
      test_inproc_deterministic;
    Alcotest.test_case "inproc fleet results" `Quick test_inproc_fleet_results;
    Alcotest.test_case "cross-personality transplants" `Quick
      test_cross_personality_transplants;
    Alcotest.test_case "corpus sync off" `Quick test_corpus_sync_off;
    Alcotest.test_case "worker death: shards reassigned, no tenant lost" `Quick
      test_worker_death_recovery;
    Alcotest.test_case "worker death: recovery is deterministic" `Quick
      test_worker_death_deterministic;
    Alcotest.test_case "journal: halt and resume reaches the same digest" `Quick
      test_journal_resume;
    Alcotest.test_case "journal: survives a double restart" `Quick
      test_journal_double_restart;
  ]
