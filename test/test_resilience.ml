open Eof_os
module Campaign = Eof_core.Campaign
module Farm = Eof_core.Farm
module Prog = Eof_core.Prog
module Bitset = Eof_util.Bitset
module Err = Eof_util.Eof_error
module Inject = Eof_debug.Inject
module Session = Eof_debug.Session
module Transport = Eof_debug.Transport
module Covlink = Eof_debug.Covlink
module Machine = Eof_agent.Machine
module Obs = Eof_obs.Obs

let mk_build _board =
  Osbuild.make ~board_profile:Eof_hw.Profiles.stm32f4_disco Zephyr.spec

let ok_or_fail = function
  | Ok v -> v
  | Error e -> Alcotest.fail (Err.to_string e)

(* --- the determinism contract: same seed, same fault schedule ----------- *)

let test_schedule_deterministic () =
  let draw seed =
    let inj = Inject.create { Inject.default_config with rate = 0.05; seed } in
    for _ = 1 to 2000 do
      ignore (Inject.decide inj : Inject.decision)
    done;
    Inject.history inj
  in
  let h1 = draw 77L and h2 = draw 77L in
  Alcotest.(check bool) "faults were injected" true (h1 <> []);
  Alcotest.(check bool) "same seed, same schedule" true (h1 = h2);
  Alcotest.(check bool) "different seed, different schedule" true (draw 78L <> h1);
  (* Bursts: at least one run of consecutive exchange indices, since a
     burst outliving the retry budget is what drives the ladder. *)
  let indices = List.map fst h1 in
  let consecutive =
    List.exists2
      (fun a b -> b = a + 1)
      (List.filteri (fun i _ -> i < List.length indices - 1) indices)
      (List.tl indices)
  in
  Alcotest.(check bool) "faults arrive in bursts" true consecutive

(* --- every fault kind, at every exchange shape, cured by the retry rung - *)

let test_fault_kinds_cured_by_retry () =
  List.iter
    (fun fault ->
      let name = Inject.fault_name fault in
      let build = mk_build 0 in
      (* rate 0: the injector is attached but inert; force_next aims one
         fault of the kind under test at the next exchange. *)
      let machine =
        ok_or_fail (Machine.create ~inject:{ Inject.default_config with rate = 0. } build)
      in
      let session = Machine.session machine in
      (* A truncated frame leaves the decoder mid-frame, so the retried
         reply completes a bad frame before attempt 3 succeeds — give the
         rung room beyond the default 3 attempts. *)
      Session.set_retry session { Err.Retry.default with attempts = 6 };
      let inj =
        match Transport.injector (Machine.transport machine) with
        | Some i -> i
        | None -> Alcotest.fail "injector not attached"
      in
      let mailbox = Osbuild.mailbox_base build in
      let clean = ok_or_fail (Session.read_mem session ~addr:mailbox ~len:16) in
      (* counted read *)
      Inject.force_next inj fault;
      let faulted = ok_or_fail (Session.read_mem session ~addr:mailbox ~len:16) in
      Alcotest.(check string) (name ^ ": read survives, data intact") clean faulted;
      (* binary X write *)
      Inject.force_next inj fault;
      ok_or_fail (Session.write_mem_bin session ~addr:mailbox "\x01\x02\x03\x04");
      (* continue (stop-reply exchange) *)
      let syms = Osbuild.syms build in
      ok_or_fail (Session.set_breakpoint session syms.Osbuild.sym_executor_main);
      Inject.force_next inj fault;
      (match Session.continue_ session with
       | Ok _ -> ()
       | Error e ->
         Alcotest.fail (name ^ ": continue failed: " ^ Err.to_string e));
      (* fused vBatch continue+drain *)
      Alcotest.(check bool) (name ^ ": stub advertises vBatch") true
        (Session.supports_batch session);
      let cov =
        Covlink.create ~session ~layout:(Osbuild.covbuf_layout build)
      in
      Inject.force_next inj fault;
      (match Covlink.continue_and_drain cov ~want_cmp:true with
       | Ok _ -> ()
       | Error e ->
         Alcotest.fail (name ^ ": continue+drain failed: " ^ Err.to_string e));
      Alcotest.(check bool) (name ^ ": retries recorded") true
        (Session.retries session > 0))
    [ Inject.Drop; Inject.Timeout; Inject.Truncate; Inject.Nak_storm; Inject.Garbage ]

(* --- the escalation ladder under a bursty link -------------------------- *)

let campaign_digest (o : Campaign.outcome) =
  ( Bitset.to_list o.Campaign.coverage_bitmap,
    List.map Prog.hash o.Campaign.final_corpus,
    o.Campaign.executed_programs,
    o.Campaign.iterations_done,
    o.Campaign.timeouts,
    o.Campaign.resets,
    o.Campaign.virtual_s )

let test_ladder_exercised () =
  let run () =
    let bus = Obs.create () in
    let config =
      { Campaign.default_config with
        iterations = 200;
        seed = 7L;
        fault_rate = 0.03;
        fault_seed = 99L
      }
    in
    match Campaign.run ~obs:bus config (mk_build 0) with
    | Error e -> Alcotest.fail (Err.to_string e)
    | Ok o -> (o, Obs.counters bus)
  in
  let o, counters = run () in
  let v name = try List.assoc name counters with Not_found -> 0 in
  Alcotest.(check bool) "campaign made progress" true (o.Campaign.coverage > 0);
  Alcotest.(check bool) "retry rung fired" true (v "session.retries" > 0);
  Alcotest.(check bool) "ladder climbed past retry" true
    (v "recover.resync" + v "recover.reset" + v "recover.reflash" > 0);
  (* Same seed, same faults, same campaign — the schedule is part of the
     deterministic replay contract. *)
  let o2, counters2 = run () in
  Alcotest.(check bool) "faulted campaign deterministic" true
    (campaign_digest o = campaign_digest o2);
  Alcotest.(check bool) "recovery counters deterministic" true (counters = counters2)

(* --- the soak: a 2-board farm on 1%-flaky links finishes ---------------- *)

let test_farm_fault_soak () =
  let config =
    { Farm.default_config with
      boards = 2;
      sync_every = 20;
      base =
        { Campaign.default_config with
          iterations = 300;
          seed = 11L;
          fault_rate = 0.01;
          fault_seed = 42L
        }
    }
  in
  match Farm.run config mk_build with
  | Error e -> Alcotest.fail (Err.to_string e)
  | Ok o ->
    Alcotest.(check bool) "coverage found through the faults" true (o.Farm.coverage > 0);
    Alcotest.(check bool) "programs executed" true (o.Farm.executed_programs > 0);
    Alcotest.(check int) "no board died at 1%" 0 o.Farm.dead_boards;
    (* Zero leaked exceptions: every board ran to its budget and sealed a
       clean outcome (an escaped exception would show up in abort_cause). *)
    Array.iter
      (fun (b : Campaign.outcome) ->
        (match b.Campaign.abort_cause with
         | None -> ()
         | Some e -> Alcotest.fail ("board aborted: " ^ Err.to_string e));
        Alcotest.(check int) "board spent its budget" 150 b.Campaign.iterations_done)
      o.Farm.per_board

(* --- snapshot restores on a flaky link ---------------------------------- *)

let test_snapshot_restore_mid_fault () =
  let build = mk_build 0 in
  let machine =
    ok_or_fail (Machine.create ~inject:{ Inject.default_config with rate = 0. } build)
  in
  let session = Machine.session machine in
  Session.set_retry session { Err.Retry.default with attempts = 6 };
  let inj =
    match Transport.injector (Machine.transport machine) with
    | Some i -> i
    | None -> Alcotest.fail "injector not attached"
  in
  (* Restore before any save is a typed remote error, not a crash. *)
  (match Machine.snapshot_restore machine with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "restore before save accepted");
  ignore (ok_or_fail (Machine.snapshot_save machine) : int);
  Alcotest.(check bool) "snapshot armed" true (Machine.has_snapshot machine);
  let mailbox = Osbuild.mailbox_base build in
  List.iter
    (fun fault ->
      let name = Inject.fault_name fault in
      ok_or_fail (Session.write_mem_bin session ~addr:mailbox "\xAA\xBB\xCC\xDD");
      (* The fault lands on the QSnapshot restore exchange itself: the
         session's retry rung must carry the restore through. Restore is
         idempotent, so a retry after a lost {e reply} (the stub already
         restored) legitimately reports 0 pages — only the end state is
         asserted. *)
      Inject.force_next inj fault;
      (match Machine.snapshot_restore machine with
       | Ok (_dirty : int) -> ()
       | Error e ->
         Alcotest.fail (name ^ ": restore failed: " ^ Err.to_string e));
      let back = ok_or_fail (Session.read_mem session ~addr:mailbox ~len:4) in
      Alcotest.(check string) (name ^ ": page rewound") "\x00\x00\x00\x00" back)
    [ Inject.Drop; Inject.Timeout; Inject.Truncate; Inject.Nak_storm; Inject.Garbage ];
  Alcotest.(check bool) "retries recorded" true (Session.retries session > 0)

(* The ladder still recovers a bursty link when its reflash rung is the
   snapshot fast path, and stays deterministic. *)
let test_snapshot_policy_under_faults () =
  let run () =
    let bus = Obs.create () in
    let config =
      { Campaign.default_config with
        iterations = 200;
        seed = 7L;
        fault_rate = 0.03;
        fault_seed = 99L;
        reset_policy = Campaign.Snapshot
      }
    in
    match Campaign.run ~obs:bus config (mk_build 0) with
    | Error e -> Alcotest.fail (Err.to_string e)
    | Ok o -> (o, Obs.counters bus)
  in
  let o, counters = run () in
  let v name = try List.assoc name counters with Not_found -> 0 in
  Alcotest.(check bool) "campaign made progress" true (o.Campaign.coverage > 0);
  Alcotest.(check bool) "ladder climbed" true
    (v "recover.resync" + v "recover.reset" + v "recover.reflash" > 0);
  (* Any reflash rung that fired went through the armed snapshot. *)
  Alcotest.(check int) "reflash rung = snapshot restores" (v "recover.reflash")
    (v "snapshot.restores");
  let o2, counters2 = run () in
  Alcotest.(check bool) "faulted snapshot campaign deterministic" true
    (campaign_digest o = campaign_digest o2);
  Alcotest.(check bool) "counters deterministic" true (counters = counters2)

(* --- a dead board does not kill the farm -------------------------------- *)

let test_dead_board_farm () =
  let config =
    { Farm.default_config with
      boards = 2;
      sync_every = 10;
      base = { Campaign.default_config with iterations = 240; seed = 5L }
    }
  in
  let inject_for i =
    if i = 1 then Some { Inject.default_config with kill_after = Some 40 } else None
  in
  match Farm.run ~inject_for config mk_build with
  | Error e -> Alcotest.fail (Err.to_string e)
  | Ok o ->
    Alcotest.(check int) "one board died" 1 o.Farm.dead_boards;
    Alcotest.(check bool) "survivor still found coverage" true (o.Farm.coverage > 0);
    Alcotest.(check bool) "survivor ran its full budget" true
      (o.Farm.per_board.(0).Campaign.iterations_done = 120
      && o.Farm.per_board.(0).Campaign.abort_cause = None);
    (match o.Farm.per_board.(1).Campaign.abort_cause with
     | Some { Err.kind = Err.Board_dead _; _ } -> ()
     | Some e -> Alcotest.fail ("wrong abort cause: " ^ Err.to_string e)
     | None -> Alcotest.fail "dead board has no abort cause")

let suite =
  [
    Alcotest.test_case "fault schedule deterministic" `Quick test_schedule_deterministic;
    Alcotest.test_case "every fault kind cured by retry" `Quick
      test_fault_kinds_cured_by_retry;
    Alcotest.test_case "escalation ladder exercised" `Quick test_ladder_exercised;
    Alcotest.test_case "2-board 1%-fault soak" `Quick test_farm_fault_soak;
    Alcotest.test_case "snapshot restore rides the retry rung" `Quick
      test_snapshot_restore_mid_fault;
    Alcotest.test_case "snapshot policy under faults" `Quick
      test_snapshot_policy_under_faults;
    Alcotest.test_case "dead board does not kill the farm" `Quick
      test_dead_board_farm;
  ]
