open Eof_hw

let trap = Alcotest.testable (Fmt.of_to_string Fault.to_string) (fun a b -> a.Fault.kind = b.Fault.kind)

let mem_le () = Memory.create ~base:0x2000_0000 ~size:4096 ~endianness:Arch.Little

let test_memory_rw () =
  let m = mem_le () in
  Memory.write_u8 m 0x2000_0000 0xAB;
  Alcotest.(check int) "u8" 0xAB (Memory.read_u8 m 0x2000_0000);
  Memory.write_u16 m 0x2000_0010 0x1234;
  Alcotest.(check int) "u16" 0x1234 (Memory.read_u16 m 0x2000_0010);
  Alcotest.(check int) "u16 lo byte first" 0x34 (Memory.read_u8 m 0x2000_0010);
  Memory.write_u32 m 0x2000_0020 0xDEADBEEFl;
  Alcotest.(check int32) "u32" 0xDEADBEEFl (Memory.read_u32 m 0x2000_0020)

let test_memory_big_endian () =
  let m = Memory.create ~base:0 ~size:64 ~endianness:Arch.Big in
  Memory.write_u16 m 0 0x1234;
  Alcotest.(check int) "be hi byte first" 0x12 (Memory.read_u8 m 0);
  Memory.write_u32 m 4 0x01020304l;
  Alcotest.(check int) "be msb" 0x01 (Memory.read_u8 m 4)

let test_memory_bus_fault () =
  let m = mem_le () in
  (try
     ignore (Memory.read_u8 m 0x1000_0000 : int);
     Alcotest.fail "no fault"
   with Fault.Trap f -> Alcotest.(check bool) "bus" true (f.Fault.kind = Fault.Bus_fault));
  try
    Memory.write_u32 m 0x2000_0FFE 0l;
    Alcotest.fail "straddle accepted"
  with Fault.Trap _ -> ()

let test_memory_bulk () =
  let m = mem_le () in
  Memory.write_bytes m ~addr:0x2000_0100 (Bytes.of_string "hello");
  Alcotest.(check string) "read back" "hello"
    (Bytes.to_string (Memory.read_bytes m ~addr:0x2000_0100 ~len:5));
  Memory.fill m ~addr:0x2000_0100 ~len:5 'x';
  Alcotest.(check string) "filled" "xxxxx"
    (Bytes.to_string (Memory.read_bytes m ~addr:0x2000_0100 ~len:5))

let test_flash_program_semantics () =
  let f = Flash.create ~base:0 ~size:8192 ~sector_size:4096 ~endianness:Arch.Little in
  Alcotest.(check string) "erased" "\xFF\xFF" (Flash.read f ~addr:0 ~len:2);
  Flash.program f ~addr:0 "\x0F";
  Alcotest.(check string) "programmed" "\x0F" (Flash.read f ~addr:0 ~len:1);
  (* Programming can only clear bits. *)
  Flash.program f ~addr:0 "\xF0";
  Alcotest.(check string) "AND semantics" "\x00" (Flash.read f ~addr:0 ~len:1);
  Flash.erase_sector f ~addr:0;
  Alcotest.(check string) "re-erased" "\xFF" (Flash.read f ~addr:0 ~len:1);
  Alcotest.(check int) "erase count" 1 (Flash.erase_count f)

let test_flash_write_image () =
  let f = Flash.create ~base:0 ~size:8192 ~sector_size:4096 ~endianness:Arch.Little in
  Flash.program f ~addr:100 "\x00\x00";
  Flash.write_image f ~addr:0 "fresh image bytes";
  Alcotest.(check string) "image readable" "fresh image bytes" (Flash.read f ~addr:0 ~len:17);
  (* write_image must erase first, so previously-cleared bits recover. *)
  Alcotest.(check string) "tail erased" "\xFF" (Flash.read f ~addr:100 ~len:1)

let test_partition_parse () =
  let text = "# table\npartition boot offset=0x0 size=0x1000\npartition app offset=0x1000 size=0x2000\n" in
  match Partition.parse_config ~flash_size:0x4000 text with
  | Error e -> Alcotest.fail e
  | Ok table ->
    Alcotest.(check int) "entries" 2 (List.length table);
    Alcotest.(check int) "total" 0x3000 (Partition.total_size table);
    let rendered = Partition.to_config table in
    (match Partition.parse_config ~flash_size:0x4000 rendered with
     | Ok table2 -> Alcotest.(check bool) "roundtrip" true (table = table2)
     | Error e -> Alcotest.fail e)

let test_partition_validation () =
  let bad overlap =
    Partition.validate ~flash_size:0x4000
      [
        { Partition.name = "a"; offset = 0; size = 0x2000 };
        { Partition.name = "b"; offset = (if overlap then 0x1000 else 0x2000); size = 0x1000 };
      ]
  in
  (match bad true with Error _ -> () | Ok () -> Alcotest.fail "overlap accepted");
  (match bad false with Ok () -> () | Error e -> Alcotest.fail e);
  match
    Partition.validate ~flash_size:0x1000
      [ { Partition.name = "x"; offset = 0; size = 0x2000 } ]
  with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "oversize accepted"

let test_uart_lines () =
  let u = Uart.create () in
  Uart.write_string u "hello\nwor";
  Alcotest.(check (list string)) "first drain" [ "hello" ] (Uart.drain_lines u);
  Uart.write_string u "ld\n";
  Alcotest.(check (list string)) "partial completes" [ "world" ] (Uart.drain_lines u)

let test_uart_overrun () =
  let u = Uart.create ~fifo_bytes:4 () in
  Uart.write_string u "abcdef";
  Alcotest.(check int) "overruns" 2 (Uart.overruns u);
  Alcotest.(check string) "newest kept" "cdef" (Uart.drain u)

let test_clock () =
  let c = Clock.create ~mhz:100 in
  Clock.advance c 1000;
  Alcotest.(check (float 1e-9)) "us" 10. (Clock.now_us c);
  Alcotest.check_raises "negative" (Invalid_argument "Clock.advance: negative") (fun () ->
      Clock.advance c (-1))

let test_image_and_board () =
  let profile = Profiles.stm32f4_disco in
  let board = Board.create profile in
  let table =
    [
      { Partition.name = "bootloader"; offset = 0; size = 0x4000 };
      { Partition.name = "kernel"; offset = 0x4000; size = 0x8000 };
    ]
  in
  let image = Image.synthesize ~table ~seed:5L () in
  Board.install board image;
  Alcotest.(check bool) "boots" true (Board.boot_ok board);
  (* Corrupt the kernel partition. *)
  Flash.corrupt (Board.flash board) ~addr:(profile.Board.flash_base + 0x5000) "junk";
  Alcotest.(check bool) "corrupted" false (Board.boot_ok board);
  Alcotest.(check (list string)) "which" [ "kernel" ] (Board.corrupted_partitions board);
  (match Board.reflash_partition board image "kernel" with
   | Ok () -> ()
   | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "recovered" true (Board.boot_ok board)

let test_board_mem_dispatch () =
  let board = Board.create Profiles.stm32f4_disco in
  let p = Board.profile board in
  (match Board.write_ram board ~addr:p.Board.ram_base "hi" with
   | Ok () -> ()
   | Error f -> Alcotest.fail (Fault.to_string f));
  (match Board.read_mem board ~addr:p.Board.ram_base ~len:2 with
   | Ok s -> Alcotest.(check string) "ram rw" "hi" s
   | Error f -> Alcotest.fail (Fault.to_string f));
  (match Board.read_mem board ~addr:p.Board.flash_base ~len:4 with
   | Ok _ -> ()
   | Error f -> Alcotest.fail (Fault.to_string f));
  (match Board.write_ram board ~addr:p.Board.flash_base "no" with
   | Error _ -> ()
   | Ok () -> Alcotest.fail "flash writable via debug write");
  match Board.read_mem board ~addr:0x1 ~len:4 with
  | Error f -> Alcotest.check trap "unmapped" { Fault.kind = Fault.Bus_fault; address = None; message = "" } f
  | Ok _ -> Alcotest.fail "unmapped readable"

let test_board_reset_keeps_clock () =
  let board = Board.create Profiles.stm32f4_disco in
  Clock.advance (Board.clock board) 500;
  Board.reset board;
  Alcotest.(check int64) "clock survives" 500L (Clock.cycles (Board.clock board));
  Alcotest.(check int) "power cycles" 1 (Board.power_cycles board)

let prop_image_verify_detects_corruption =
  QCheck.Test.make ~name:"image verify detects any flash corruption" ~count:50
    QCheck.(pair small_nat (string_of_size Gen.(1 -- 8)))
    (fun (off, junk) ->
      let table = [ { Partition.name = "k"; offset = 0; size = 0x4000 } ] in
      let image = Image.synthesize ~table ~seed:9L () in
      let flash = Flash.create ~base:0 ~size:0x4000 ~sector_size:0x1000 ~endianness:Arch.Little in
      Image.flash_all image flash;
      let off = off mod (0x4000 - String.length junk) in
      let before = Flash.read flash ~addr:off ~len:(String.length junk) in
      Flash.corrupt flash ~addr:off junk;
      let changed = before <> junk in
      let detected = Image.verify image flash <> [] in
      (not changed) || detected)

let suite =
  [
    Alcotest.test_case "memory rw" `Quick test_memory_rw;
    Alcotest.test_case "memory big-endian" `Quick test_memory_big_endian;
    Alcotest.test_case "memory bus fault" `Quick test_memory_bus_fault;
    Alcotest.test_case "memory bulk" `Quick test_memory_bulk;
    Alcotest.test_case "flash program semantics" `Quick test_flash_program_semantics;
    Alcotest.test_case "flash write_image" `Quick test_flash_write_image;
    Alcotest.test_case "partition parse" `Quick test_partition_parse;
    Alcotest.test_case "partition validation" `Quick test_partition_validation;
    Alcotest.test_case "uart lines" `Quick test_uart_lines;
    Alcotest.test_case "uart overrun" `Quick test_uart_overrun;
    Alcotest.test_case "clock" `Quick test_clock;
    Alcotest.test_case "image install/verify/reflash" `Quick test_image_and_board;
    Alcotest.test_case "board memory dispatch" `Quick test_board_mem_dispatch;
    Alcotest.test_case "board reset keeps clock" `Quick test_board_reset_keeps_clock;
    QCheck_alcotest.to_alcotest prop_image_verify_detects_corruption;
  ]

let test_gpio_edges () =
  let g = Gpio.create () in
  (match Gpio.configure_irq g ~pin:3 Gpio.Rising with Ok () -> () | Error e -> Alcotest.fail e);
  (* Low -> low: no edge. *)
  ignore (Gpio.set_level g ~pin:3 ~level:false : (unit, string) result);
  Alcotest.(check int) "no edge" 0 (Gpio.pending_count g);
  (* Rising edge latches. *)
  ignore (Gpio.set_level g ~pin:3 ~level:true : (unit, string) result);
  Alcotest.(check int) "latched" 1 (Gpio.pending_count g);
  (* Falling is not armed. *)
  ignore (Gpio.set_level g ~pin:3 ~level:false : (unit, string) result);
  Alcotest.(check (list int)) "drain" [ 3 ] (Gpio.drain_pending g);
  Alcotest.(check int) "cleared" 0 (Gpio.pending_count g);
  (* Both-edge pin. *)
  ignore (Gpio.configure_irq g ~pin:5 Gpio.Both : (unit, string) result);
  ignore (Gpio.set_level g ~pin:5 ~level:true : (unit, string) result);
  ignore (Gpio.set_level g ~pin:5 ~level:false : (unit, string) result);
  Alcotest.(check (list int)) "both edges coalesce per pin" [ 5 ] (Gpio.drain_pending g);
  (* Unarmed pins never latch. *)
  ignore (Gpio.set_level g ~pin:7 ~level:true : (unit, string) result);
  Alcotest.(check int) "unarmed" 0 (Gpio.pending_count g);
  (match Gpio.set_level g ~pin:99 ~level:true with
   | Error _ -> ()
   | Ok () -> Alcotest.fail "bad pin accepted");
  Gpio.reset g;
  Alcotest.(check bool) "reset clears level" false (Gpio.level g ~pin:3)

let suite = suite @ [ Alcotest.test_case "gpio edges" `Quick test_gpio_edges ]

(* Property: partition config print/parse round-trips. *)
let prop_partition_roundtrip =
  QCheck.Test.make ~name:"partition config roundtrip" ~count:100
    QCheck.(small_list (pair (int_bound 15) (int_bound 15)))
    (fun raw ->
      (* Build a valid non-overlapping table from the raw pairs. *)
      let entries, _ =
        List.fold_left
          (fun (acc, off) (i, sz) ->
            let size = 0x1000 * (1 + sz) in
            ( { Partition.name = Printf.sprintf "p%d_%d" (List.length acc) i;
                offset = off; size }
              :: acc,
              off + size ))
          ([], 0) raw
      in
      let table = List.rev entries in
      let flash_size = Partition.total_size table + 0x1000 in
      match Partition.parse_config ~flash_size (Partition.to_config table) with
      | Ok parsed -> parsed = table
      | Error _ -> table = [])

let suite = suite @ [ QCheck_alcotest.to_alcotest prop_partition_roundtrip ]

(* --- copy-on-write snapshots -------------------------------------------- *)

let test_memory_dirty_pages () =
  let m = mem_le () in
  (* 4096 bytes = 16 device pages of 256 *)
  Memory.write_u8 m 0x2000_0000 0x11;
  (* pre-capture write: part of the baseline, not of the dirty set *)
  let baseline = Memory.baseline m in
  let since = Memory.mark_generation m in
  Alcotest.(check int) "clean after capture" 0 (Memory.dirty_page_count m ~since);
  Memory.write_u8 m 0x2000_0100 0xAA;
  Memory.write_u8 m 0x2000_0300 0xBB;
  Memory.write_u32 m 0x2000_0F00 0xDEADBEEFl;
  Alcotest.(check int) "three distinct pages dirty" 3
    (Memory.dirty_page_count m ~since);
  Memory.write_u8 m 0x2000_0101 0xCC;
  Alcotest.(check int) "same page counted once" 3
    (Memory.dirty_page_count m ~since);
  Alcotest.(check int) "restore copies exactly the dirty pages" 3
    (Memory.restore_pages m ~baseline ~since);
  Alcotest.(check int) "dirty content rewound" 0 (Memory.read_u8 m 0x2000_0100);
  Alcotest.(check int) "pre-capture write survives" 0x11
    (Memory.read_u8 m 0x2000_0000);
  Alcotest.(check int) "second restore copies nothing" 0
    (Memory.restore_pages m ~baseline ~since)

let test_memory_clear_dirty () =
  let m = mem_le () in
  Memory.write_u8 m 0x2000_0200 0x55;
  let baseline = Memory.baseline m in
  let since = Memory.mark_generation m in
  Memory.write_u8 m 0x2000_0500 0x66;
  Memory.clear m;
  (* clear zeroes only maybe-nonzero pages and stamps just those dirty —
     the pre-capture page 2 (whose baseline content clear destroyed) and
     the post-capture page 5, never the other 14. *)
  Alcotest.(check int) "clear dirties only written pages" 2
    (Memory.dirty_page_count m ~since);
  Alcotest.(check int) "restore copies them back" 2
    (Memory.restore_pages m ~baseline ~since);
  Alcotest.(check int) "pre-capture content back" 0x55
    (Memory.read_u8 m 0x2000_0200);
  Alcotest.(check int) "post-capture page pristine" 0
    (Memory.read_u8 m 0x2000_0500)

let test_board_snapshot_roundtrip () =
  let profile = Profiles.stm32f4_disco in
  let board = Board.create profile in
  let table = [ { Partition.name = "kernel"; offset = 0; size = 0x4000 } ] in
  let image = Image.synthesize ~table ~seed:7L () in
  Board.install board image;
  let before = Clock.cycles (Board.clock board) in
  let snap = Board.snapshot board in
  Alcotest.(check int64) "save cost covers every device page"
    (Int64.of_int (Snapshot.pages snap * Snapshot.save_cycles_per_page))
    (Int64.sub (Clock.cycles (Board.clock board)) before);
  (* Scribble over RAM and flash, breaking the installed image. *)
  (match Board.write_ram board ~addr:profile.Board.ram_base "scribble" with
   | Ok () -> ()
   | Error f -> Alcotest.fail (Fault.to_string f));
  Flash.corrupt (Board.flash board) ~addr:(profile.Board.flash_base + 0x100) "junk";
  Alcotest.(check bool) "image broken" false (Board.boot_ok board);
  let before = Clock.cycles (Board.clock board) in
  let dirty = Board.restore_snapshot board snap in
  Alcotest.(check bool) "some pages dirty" true (dirty > 0);
  Alcotest.(check bool) "far fewer than the board total" true
    (dirty < Snapshot.pages snap / 4);
  Alcotest.(check int64) "restore cost is O(dirty pages)"
    (Int64.of_int
       (Snapshot.restore_base_cycles + (dirty * Snapshot.restore_cycles_per_page)))
    (Int64.sub (Clock.cycles (Board.clock board)) before);
  Alcotest.(check bool) "image pristine again" true (Board.boot_ok board);
  match Board.read_mem board ~addr:profile.Board.ram_base ~len:8 with
  | Ok s -> Alcotest.(check string) "ram rewound" (String.make 8 '\000') s
  | Error f -> Alcotest.fail (Fault.to_string f)

let suite =
  suite
  @ [
      Alcotest.test_case "memory dirty-page accounting" `Quick test_memory_dirty_pages;
      Alcotest.test_case "memory clear keeps dirty set small" `Quick
        test_memory_clear_dirty;
      Alcotest.test_case "board snapshot roundtrip" `Quick test_board_snapshot_roundtrip;
    ]
