open Eof_hw
open Eof_exec
open Eof_debug

let test_checksum_frame () =
  Alcotest.(check int) "sum" 0x9a (Rsp.checksum "OK");
  Alcotest.(check string) "frame" "$OK#9a" (Rsp.make_frame "OK")

let test_escape_roundtrip () =
  let raw = "a$b#c}d*e" in
  let escaped = Rsp.escape_binary raw in
  Alcotest.(check bool) "no raw specials" true
    (not (String.contains escaped '$') && not (String.contains escaped '#'));
  match Rsp.unescape_binary escaped with
  | Ok s -> Alcotest.(check string) "roundtrip" raw s
  | Error e -> Alcotest.fail (Eof_util.Eof_error.to_string e)

let test_decoder_stream () =
  let d = Rsp.Decoder.create () in
  (* Two frames split across feeds plus noise and an ack. *)
  let ev1 = Rsp.Decoder.feed d "+$O" in
  let ev2 = Rsp.Decoder.feed d ("K#9a" ^ "noise" ^ Rsp.make_frame "m0,4") in
  (match ev1 with
   | [ Rsp.Decoder.Ack ] -> ()
   | _ -> Alcotest.fail "expected ack");
  match ev2 with
  | [ Rsp.Decoder.Packet "OK"; Rsp.Decoder.Packet "m0,4" ] -> ()
  | _ -> Alcotest.fail "expected two packets"

let test_decoder_bad_checksum () =
  let d = Rsp.Decoder.create () in
  match Rsp.Decoder.feed d "$OK#00" with
  | [ Rsp.Decoder.Bad_checksum "OK" ] -> ()
  | _ -> Alcotest.fail "expected bad checksum"

let test_command_roundtrip () =
  let cases =
    [
      Rsp.Q_supported "swbreak+";
      Rsp.Read_mem { addr = 0x20000000; len = 64 };
      Rsp.Write_mem { addr = 0x100; data = "ab\x00\xFF" };
      Rsp.Insert_breakpoint 0x08004000;
      Rsp.Remove_breakpoint 0x08004000;
      Rsp.Continue;
      Rsp.Step;
      Rsp.Read_registers;
      Rsp.Halt_reason;
      Rsp.Flash_erase { addr = 0x08000000; len = 0x4000 };
      Rsp.Flash_write { addr = 0x08000000; data = "}$#*raw\x01" };
      Rsp.Flash_done;
      Rsp.Monitor "reset halt";
      Rsp.Kill;
    ]
  in
  List.iter
    (fun cmd ->
      match Rsp.parse_command (Rsp.render_command cmd) with
      | Ok cmd' -> Alcotest.(check bool) "roundtrip" true (cmd = cmd')
      | Error e -> Alcotest.fail (Eof_util.Eof_error.to_string e))
    cases

let test_command_rejects () =
  List.iter
    (fun payload ->
      match Rsp.parse_command payload with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail (Printf.sprintf "accepted %S" payload))
    [ ""; "Mdeadbeef"; "Z9,100,2"; "m100"; "vFlashWrite:zz"; "qUnknown" ]

let test_reply_roundtrip () =
  let pc_reg = 15 in
  List.iter
    (fun reply ->
      match Rsp.parse_reply ~pc_reg (Rsp.render_reply ~pc_reg reply) with
      | Ok reply' -> Alcotest.(check bool) "roundtrip" true (reply = reply')
      | Error e -> Alcotest.fail (Eof_util.Eof_error.to_string e))
    [
      Rsp.Ok_reply;
      Rsp.Error_reply 14;
      Rsp.Stop { signal = 5; pc = 0x08001234; detail = "swbreak" };
      Rsp.Stop { signal = 2; pc = 0x08000000; detail = "quantum" };
      Rsp.Exited 0;
    ]

(* A tiny machine for server/session tests: three sites then exit. *)
let make_machine () =
  let board = Board.create Profiles.stm32f4_disco in
  let base = (Board.profile board).Board.flash_base in
  let engine =
    Engine.create ~board ~fault_vector:(base + 0xF00) ~entry:(fun () ->
        Target.site (base + 0x100);
        Target.uart_tx "hello from target\n";
        Target.site (base + 0x104);
        Target.site (base + 0x108))
  in
  let server = Openocd.create ~board ~engine () in
  let transport = Transport.create () in
  (board, engine, server, transport)

let connect_exn (server, transport) =
  match Session.connect ~transport ~server () with
  | Ok s -> s
  | Error e -> Alcotest.fail (Session.error_to_string e)

let test_session_memory () =
  let board, _, server, transport = make_machine () in
  let s = connect_exn (server, transport) in
  let ram_base = (Board.profile board).Board.ram_base in
  (match Session.write_mem s ~addr:ram_base "fuzz" with
   | Ok () -> ()
   | Error e -> Alcotest.fail (Session.error_to_string e));
  (match Session.read_mem s ~addr:ram_base ~len:4 with
   | Ok data -> Alcotest.(check string) "rw over rsp" "fuzz" data
   | Error e -> Alcotest.fail (Session.error_to_string e));
  (match Session.write_u32 s ~addr:(ram_base + 8) 0xCAFEBABEl with
   | Ok () -> ()
   | Error e -> Alcotest.fail (Session.error_to_string e));
  (match Session.read_u32 s ~addr:(ram_base + 8) with
   | Ok v -> Alcotest.(check int32) "u32" 0xCAFEBABEl v
   | Error e -> Alcotest.fail (Session.error_to_string e));
  match Session.read_mem s ~addr:0x1 ~len:4 with
  | Error { Eof_util.Eof_error.kind = Remote _; _ } -> ()
  | _ -> Alcotest.fail "unmapped read must fail remotely"

let test_session_breakpoint_flow () =
  let board, _, server, transport = make_machine () in
  let s = connect_exn (server, transport) in
  let base = (Board.profile board).Board.flash_base in
  (match Session.set_breakpoint s (base + 0x104) with
   | Ok () -> ()
   | Error e -> Alcotest.fail (Session.error_to_string e));
  (match Session.continue_ s with
   | Ok (Session.Stopped_breakpoint pc) -> Alcotest.(check int) "bp pc" (base + 0x104) pc
   | Ok _ -> Alcotest.fail "wrong stop"
   | Error e -> Alcotest.fail (Session.error_to_string e));
  (match Session.read_pc s with
   | Ok pc -> Alcotest.(check int) "g pc" (base + 0x104) pc
   | Error e -> Alcotest.fail (Session.error_to_string e));
  (match Session.drain_uart s with
   | Ok log -> Alcotest.(check string) "uart over monitor" "hello from target\n" log
   | Error e -> Alcotest.fail (Session.error_to_string e));
  match Session.continue_ s with
  | Ok Session.Target_exited -> ()
  | Ok _ -> Alcotest.fail "expected exit"
  | Error e -> Alcotest.fail (Session.error_to_string e)

let test_session_reset_and_flash () =
  let board, _, server, transport = make_machine () in
  let s = connect_exn (server, transport) in
  let base = (Board.profile board).Board.flash_base in
  (match Session.flash_erase s ~addr:base ~len:0x4000 with
   | Ok () -> ()
   | Error e -> Alcotest.fail (Session.error_to_string e));
  (match Session.flash_write s ~addr:base "IMG}$#data" with
   | Ok () -> ()
   | Error e -> Alcotest.fail (Session.error_to_string e));
  (match Session.flash_done s with
   | Ok () -> ()
   | Error e -> Alcotest.fail (Session.error_to_string e));
  Alcotest.(check string) "flash content" "IMG}$#data"
    (Flash.read (Board.flash board) ~addr:base ~len:10);
  (match Session.reset_target s with
   | Ok () -> ()
   | Error e -> Alcotest.fail (Session.error_to_string e));
  Alcotest.(check int) "power cycled" 1 (Board.power_cycles board)

let test_transport_failures () =
  let _, _, server, transport = make_machine () in
  let s = connect_exn (server, transport) in
  Transport.set_failure_mode transport Transport.Down;
  (match Session.read_pc s with
   | Error { Eof_util.Eof_error.kind = Link_timeout; _ } -> ()
   | _ -> Alcotest.fail "expected timeout on dead link");
  Transport.set_failure_mode transport Transport.Up;
  (match Session.read_pc s with
   | Ok _ -> ()
   | Error e -> Alcotest.fail (Session.error_to_string e));
  Alcotest.(check bool) "timeouts counted" true (Transport.timeouts transport >= 1);
  Alcotest.(check bool) "latency accrues" true (Transport.elapsed_us transport > 0.)

let test_quantum_stop_reports_pc () =
  let board = Board.create Profiles.stm32f4_disco in
  let base = (Board.profile board).Board.flash_base in
  let engine =
    Engine.create ~board ~fault_vector:(base + 0xF00) ~entry:(fun () ->
        let rec spin () =
          Target.site (base + 0x200);
          spin ()
        in
        spin ())
  in
  let server = Openocd.create ~continue_quantum:500 ~board ~engine () in
  let transport = Transport.create () in
  let s = connect_exn (server, transport) in
  match Session.continue_ s with
  | Ok (Session.Stopped_quantum pc) -> Alcotest.(check int) "spin pc" (base + 0x200) pc
  | Ok _ -> Alcotest.fail "expected quantum stop"
  | Error e -> Alcotest.fail (Session.error_to_string e)

let prop_decoder_frame_any_payload =
  QCheck.Test.make ~name:"decoder accepts any escaped framed payload" ~count:200
    QCheck.string (fun raw ->
      let payload = Rsp.escape_binary raw in
      let d = Rsp.Decoder.create () in
      match Rsp.Decoder.feed d (Rsp.make_frame payload) with
      | [ Rsp.Decoder.Packet p ] -> p = payload
      | _ -> false)

let suite =
  [
    Alcotest.test_case "checksum/frame" `Quick test_checksum_frame;
    Alcotest.test_case "escape roundtrip" `Quick test_escape_roundtrip;
    Alcotest.test_case "decoder stream" `Quick test_decoder_stream;
    Alcotest.test_case "decoder bad checksum" `Quick test_decoder_bad_checksum;
    Alcotest.test_case "command roundtrip" `Quick test_command_roundtrip;
    Alcotest.test_case "command rejects" `Quick test_command_rejects;
    Alcotest.test_case "reply roundtrip" `Quick test_reply_roundtrip;
    Alcotest.test_case "session memory" `Quick test_session_memory;
    Alcotest.test_case "session breakpoint flow" `Quick test_session_breakpoint_flow;
    Alcotest.test_case "session reset/flash" `Quick test_session_reset_and_flash;
    Alcotest.test_case "transport failures" `Quick test_transport_failures;
    Alcotest.test_case "quantum stop reports pc" `Quick test_quantum_stop_reports_pc;
    QCheck_alcotest.to_alcotest prop_decoder_frame_any_payload;
  ]

let test_gpio_injection_over_monitor () =
  let board, _, server, transport = make_machine () in
  let s = connect_exn (server, transport) in
  (match Eof_hw.Gpio.configure_irq (Board.gpio board) ~pin:2 Eof_hw.Gpio.Rising with
   | Ok () -> ()
   | Error e -> Alcotest.fail e);
  (match Session.inject_gpio s ~pin:2 ~level:true with
   | Ok () -> ()
   | Error e -> Alcotest.fail (Session.error_to_string e));
  Alcotest.(check bool) "level set" true (Eof_hw.Gpio.level (Board.gpio board) ~pin:2);
  Alcotest.(check int) "irq latched" 1 (Eof_hw.Gpio.pending_count (Board.gpio board));
  match Session.inject_gpio s ~pin:99 ~level:true with
  | Error { Eof_util.Eof_error.kind = Remote _; _ } -> ()
  | _ -> Alcotest.fail "bad pin accepted"

let test_monitor_unknown_command () =
  let _, _, server, transport = make_machine () in
  let s = connect_exn (server, transport) in
  match Session.monitor s "frobnicate" with
  | Error { Eof_util.Eof_error.kind = Remote 1; _ } -> ()
  | _ -> Alcotest.fail "unknown monitor command accepted"

let suite =
  suite
  @ [
      Alcotest.test_case "gpio injection over monitor" `Quick
        test_gpio_injection_over_monitor;
      Alcotest.test_case "unknown monitor command" `Quick test_monitor_unknown_command;
    ]

(* Property: every renderable command round-trips through the parser. *)
let prop_command_roundtrip =
  let cmd_gen =
    QCheck.Gen.(
      oneof
        [
          map2 (fun a l -> Rsp.Read_mem { addr = a land 0xFFFFFFF; len = l land 0xFFFF }) nat nat;
          map2
            (fun a (d : string) -> Rsp.Write_mem { addr = a land 0xFFFFFFF; data = d })
            nat (string_size (0 -- 32));
          map (fun a -> Rsp.Insert_breakpoint (a land 0xFFFFFFF)) nat;
          map (fun a -> Rsp.Remove_breakpoint (a land 0xFFFFFFF)) nat;
          return Rsp.Continue;
          return Rsp.Step;
          return Rsp.Read_registers;
          return Rsp.Halt_reason;
          map2 (fun a l -> Rsp.Flash_erase { addr = a land 0xFFFFFFF; len = l land 0xFFFFF }) nat nat;
          map2
            (fun a (d : string) -> Rsp.Flash_write { addr = a land 0xFFFFFFF; data = d })
            nat (string_size (0 -- 32));
          return Rsp.Flash_done;
          map (fun s -> Rsp.Monitor s) (string_size (1 -- 16));
          return Rsp.Kill;
        ])
  in
  QCheck.Test.make ~name:"rsp command roundtrip (generated)" ~count:300 (QCheck.make cmd_gen)
    (fun cmd ->
      match Rsp.parse_command (Rsp.render_command cmd) with
      | Ok cmd' -> cmd = cmd'
      | Error _ -> false)

let suite = suite @ [ QCheck_alcotest.to_alcotest prop_command_roundtrip ]

let test_read_pc_across_architectures () =
  (* The g-packet register dump must encode the PC correctly for every
     supported architecture's register numbering and endianness. *)
  List.iter
    (fun profile ->
      let board = Board.create profile in
      let site = profile.Board.flash_base + 0x123 * 4 in
      let engine =
        Engine.create ~board ~fault_vector:profile.Board.flash_base ~entry:(fun () ->
            Target.site site;
            Target.site (site + 4))
      in
      let server = Openocd.create ~board ~engine () in
      let transport = Transport.create () in
      let s = connect_exn (server, transport) in
      (match Session.step s with
       | Ok _ -> ()
       | Error e -> Alcotest.fail (Session.error_to_string e));
      match Session.read_pc s with
      | Ok pc -> Alcotest.(check int) profile.Board.name site pc
      | Error e -> Alcotest.fail (profile.Board.name ^ ": " ^ Session.error_to_string e))
    Profiles.all

let suite =
  suite
  @ [ Alcotest.test_case "read_pc across architectures" `Quick
        test_read_pc_across_architectures ]

(* --- batched debug link: X packets, vBatch, Covlink ------------------ *)

let test_x_packet_roundtrip () =
  List.iter
    (fun data ->
      let cmd = Rsp.Write_mem_bin { addr = 0x20000100; data } in
      match Rsp.parse_command (Rsp.render_command cmd) with
      | Ok cmd' -> Alcotest.(check bool) "roundtrip" true (cmd = cmd')
      | Error e -> Alcotest.fail (Eof_util.Eof_error.to_string e))
    [ ""; "}$#*"; "\x00\x01\xFF}}x"; String.init 256 Char.chr ]

let test_x_packet_writes_memory () =
  let board, _, server, transport = make_machine () in
  let s = connect_exn (server, transport) in
  let ram_base = (Board.profile board).Board.ram_base in
  let payload = "}$#*\x00\xFFbin" in
  (match Session.write_mem_bin s ~addr:ram_base payload with
   | Ok () -> ()
   | Error e -> Alcotest.fail (Session.error_to_string e));
  (match Session.read_mem s ~addr:ram_base ~len:(String.length payload) with
   | Ok data -> Alcotest.(check string) "binary write landed" payload data
   | Error e -> Alcotest.fail (Session.error_to_string e));
  (* An X write never costs more wire bytes than the hex M write of the
     same data: that is the point of the packet. *)
  Alcotest.(check bool) "x shorter than m" true
    (String.length (Rsp.render_command (Rsp.Write_mem_bin { addr = ram_base; data = payload }))
     < String.length (Rsp.render_command (Rsp.Write_mem { addr = ram_base; data = payload })))

let test_batch_codec_samples () =
  (* Binary data containing the wire separators ';' ':' ',' and the RSP
     specials must survive: segments are length-prefixed, not delimited. *)
  let ops =
    [
      Rsp.B_continue;
      Rsp.B_read { addr = 0x20000000; len = 0x40 };
      Rsp.B_write { addr = 0x20000100; data = ";:,}$#*\x00\xFF" };
      Rsp.B_read_counted
        { count_addr = 0x20000200; data_addr = 0x20000204; stride = 4;
          max_count = 2048; reset = true };
      Rsp.B_read_counted
        { count_addr = 0x20002204; data_addr = 0x20002208; stride = 8;
          max_count = 1024; reset = false };
      Rsp.B_monitor "uart";
    ]
  in
  (match Rsp.parse_batch_ops (Rsp.render_batch_ops ops) with
   | Ok ops' -> Alcotest.(check bool) "ops roundtrip" true (ops = ops')
   | Error e -> Alcotest.fail (Eof_util.Eof_error.to_string e));
  let replies =
    [
      Rsp.Br_ok;
      Rsp.Br_error 0x0E;
      Rsp.Br_data ";:}$#*\x01";
      Rsp.Br_counted { count = 4096; data = String.make 16 ';' };
      Rsp.Br_stop "T05f:00400608;swbreak:;";
    ]
  in
  (match Rsp.parse_batch_replies (Rsp.render_batch_replies replies) with
   | Ok r' -> Alcotest.(check bool) "replies roundtrip" true (replies = r')
   | Error e -> Alcotest.fail (Eof_util.Eof_error.to_string e));
  (* The whole command survives the command layer too. *)
  match Rsp.parse_command (Rsp.render_command (Rsp.Batch ops)) with
  | Ok (Rsp.Batch ops') -> Alcotest.(check bool) "command roundtrip" true (ops = ops')
  | Ok _ -> Alcotest.fail "parsed as wrong command"
  | Error e -> Alcotest.fail (Eof_util.Eof_error.to_string e)

let prop_batch_ops_roundtrip =
  let op_gen =
    QCheck.Gen.(
      oneof
        [
          return Rsp.B_continue;
          map2
            (fun a l -> Rsp.B_read { addr = a land 0xFFFFFFF; len = l land 0xFFFF })
            nat nat;
          map2
            (fun a (d : string) -> Rsp.B_write { addr = a land 0xFFFFFFF; data = d })
            nat (string_size (0 -- 24));
          map
            (fun (ca, da, st, mx, r) ->
              Rsp.B_read_counted
                { count_addr = ca land 0xFFFFFFF; data_addr = da land 0xFFFFFFF;
                  stride = 1 + (st land 7); max_count = mx land 0xFFFF; reset = r })
            (tup5 nat nat nat nat bool);
          map (fun s -> Rsp.B_monitor s) (string_size (0 -- 16));
        ])
  in
  QCheck.Test.make ~name:"vBatch ops roundtrip (generated)" ~count:300
    (QCheck.make QCheck.Gen.(list_size (1 -- 6) op_gen))
    (fun ops ->
      match Rsp.parse_batch_ops (Rsp.render_batch_ops ops) with
      | Ok ops' -> ops = ops'
      | Error _ -> false)

let prop_batch_replies_roundtrip =
  let reply_gen =
    QCheck.Gen.(
      oneof
        [
          return Rsp.Br_ok;
          map (fun n -> Rsp.Br_error (n land 0xFF)) nat;
          map (fun s -> Rsp.Br_data s) (string_size (0 -- 24));
          map2
            (fun c (d : string) -> Rsp.Br_counted { count = c land 0xFFFFF; data = d })
            nat (string_size (0 -- 24));
          map (fun s -> Rsp.Br_stop s) (string_size (0 -- 24));
        ])
  in
  QCheck.Test.make ~name:"vBatch replies roundtrip (generated)" ~count:300
    (QCheck.make QCheck.Gen.(list_size (1 -- 6) reply_gen))
    (fun replies ->
      match Rsp.parse_batch_replies (Rsp.render_batch_replies replies) with
      | Ok r' -> replies = r'
      | Error _ -> false)

let test_vbatch_over_server () =
  let board, _, server, transport = make_machine () in
  let s = connect_exn (server, transport) in
  Alcotest.(check bool) "stub advertises vBatch" true (Session.supports_batch s);
  let ram_base = (Board.profile board).Board.ram_base in
  let count_addr = ram_base + 0x100 in
  let data_addr = ram_base + 0x104 in
  (* Seed a counter of 3 and 5 stride-4 elements; the counted read must
     clamp to the counter, not the max. *)
  (match Session.write_u32 s ~addr:count_addr 3l with
   | Ok () -> ()
   | Error e -> Alcotest.fail (Session.error_to_string e));
  (match Session.write_mem s ~addr:data_addr "AAAABBBBCCCCDDDDEEEE" with
   | Ok () -> ()
   | Error e -> Alcotest.fail (Session.error_to_string e));
  let before = Transport.exchanges transport in
  let ops =
    [
      Rsp.B_write { addr = ram_base; data = ";bin}$#" };
      Rsp.B_read { addr = ram_base; len = 7 };
      Rsp.B_read_counted
        { count_addr; data_addr; stride = 4; max_count = 16; reset = true };
      Rsp.B_monitor "cycles";
      Rsp.B_read { addr = 0x1; len = 4 };  (* unmapped: an error slot *)
    ]
  in
  (match Session.batch s ops with
   | Error e -> Alcotest.fail (Session.error_to_string e)
   | Ok [ w; r; k; m; bad ] ->
     Alcotest.(check bool) "write ok" true (w = Rsp.Br_ok);
     Alcotest.(check bool) "read echoes" true (r = Rsp.Br_data ";bin}$#");
     (match k with
      | Rsp.Br_counted { count; data } ->
        Alcotest.(check int) "raw counter" 3 count;
        Alcotest.(check string) "clamped data" "AAAABBBBCCCC" data
      | _ -> Alcotest.fail "expected counted reply");
     (match m with
      | Rsp.Br_data text ->
        Alcotest.(check bool) "cycles decimal" true (int_of_string_opt text <> None)
      | _ -> Alcotest.fail "expected monitor text");
     (match bad with
      | Rsp.Br_error _ -> ()
      | _ -> Alcotest.fail "unmapped read must yield an error slot")
   | Ok _ -> Alcotest.fail "wrong reply arity");
  Alcotest.(check int) "five ops, one exchange" 1 (Transport.exchanges transport - before);
  (* reset=true must have zeroed the counter server-side. *)
  match Session.read_u32 s ~addr:count_addr with
  | Ok v -> Alcotest.(check int32) "counter reset" 0l v
  | Error e -> Alcotest.fail (Session.error_to_string e)

let test_counted_read_big_endian () =
  (* All stock profiles are little-endian; a counted read must decode the
     counter with the target's byte order, so exercise a big-endian one. *)
  let profile = { Profiles.stm32f4_disco with Board.name = "be-test"; arch = Arch.powerpc } in
  let board = Board.create profile in
  let engine =
    Engine.create ~board ~fault_vector:(profile.Board.flash_base + 0xF00)
      ~entry:(fun () -> Target.site (profile.Board.flash_base + 0x100))
  in
  let server = Openocd.create ~board ~engine () in
  let transport = Transport.create () in
  let s = connect_exn (server, transport) in
  let count_addr = profile.Board.ram_base + 0x40 in
  let data_addr = profile.Board.ram_base + 0x44 in
  (match Session.write_u32 s ~addr:count_addr 2l with
   | Ok () -> ()
   | Error e -> Alcotest.fail (Session.error_to_string e));
  (match Session.write_mem s ~addr:data_addr "12345678" with
   | Ok () -> ()
   | Error e -> Alcotest.fail (Session.error_to_string e));
  match
    Session.batch s
      [ Rsp.B_read_counted { count_addr; data_addr; stride = 4; max_count = 8; reset = false } ]
  with
  | Ok [ Rsp.Br_counted { count; data } ] ->
    Alcotest.(check int) "be counter" 2 count;
    Alcotest.(check string) "be data" "12345678" data
  | Ok _ -> Alcotest.fail "expected one counted reply"
  | Error e -> Alcotest.fail (Session.error_to_string e)

let test_covlink_continue_and_drain () =
  let board, _, server, transport = make_machine () in
  let s = connect_exn (server, transport) in
  let profile = Board.profile board in
  let ram_base = profile.Board.ram_base in
  let layout = { Eof_cov.Sancov.Layout.base = ram_base + 0x800; capacity_records = 8 } in
  let module L = Eof_cov.Sancov.Layout in
  (* Pre-populate the coverage area the way target-side hooks would. *)
  let le32 v =
    let b = Bytes.create 4 in
    Bytes.set_int32_le b 0 (Int32.of_int v);
    Bytes.to_string b
  in
  let ok = function Ok x -> x | Error e -> Alcotest.fail (Session.error_to_string e) in
  ok (Session.write_mem s ~addr:(L.write_index_addr layout) (le32 3));
  ok (Session.write_mem s ~addr:(L.records_addr layout) (le32 10 ^ le32 20 ^ le32 30));
  ok (Session.write_mem s ~addr:(L.cmp_count_addr layout) (le32 2));
  ok (Session.write_mem s ~addr:(L.cmp_ring_addr layout)
        (le32 5 ^ le32 9 ^ le32 700 ^ le32 7));
  let cl = Covlink.create ~session:s ~layout in
  ok (Session.set_breakpoint s (profile.Board.flash_base + 0x104));
  let before = Transport.exchanges transport in
  (match Covlink.continue_and_drain cl ~want_cmp:true with
   | Error e -> Alcotest.fail (Session.error_to_string e)
   | Ok (stop, d) ->
     (match stop with
      | Session.Stopped_breakpoint pc ->
        Alcotest.(check int) "stop pc" (profile.Board.flash_base + 0x104) pc
      | _ -> Alcotest.fail "expected breakpoint stop");
     Alcotest.(check int) "records drained" 3 d.Covlink.n_records;
     Alcotest.(check bool) "records decode" true
       (Eof_cov.Sancov.decode_records ~endianness:Arch.Little ~count:3
          d.Covlink.records_raw
        = [ 10; 20; 30 ]);
     Alcotest.(check int) "cmp pairs drained" 2 d.Covlink.n_cmp;
     Alcotest.(check bool) "cmp decode" true
       (Eof_cov.Sancov.decode_cmp_ring ~endianness:Arch.Little ~count:2 d.Covlink.cmp_raw
        = [ (5l, 9l); (700l, 7l) ]);
     Alcotest.(check string) "uart fused into drain" "hello from target\n" d.Covlink.log);
  Alcotest.(check int) "continue+full drain = one exchange" 1
    (Transport.exchanges transport - before);
  (* Both counters were reset; a second drain comes back empty. *)
  match Covlink.drain cl ~want_cmp:true with
  | Error e -> Alcotest.fail (Session.error_to_string e)
  | Ok d ->
    Alcotest.(check int) "no records left" 0 d.Covlink.n_records;
    Alcotest.(check int) "no cmp left" 0 d.Covlink.n_cmp;
    Alcotest.(check string) "no log left" "" d.Covlink.log

let suite =
  suite
  @ [
      Alcotest.test_case "x packet roundtrip" `Quick test_x_packet_roundtrip;
      Alcotest.test_case "x packet writes memory" `Quick test_x_packet_writes_memory;
      Alcotest.test_case "batch codec samples" `Quick test_batch_codec_samples;
      QCheck_alcotest.to_alcotest prop_batch_ops_roundtrip;
      QCheck_alcotest.to_alcotest prop_batch_replies_roundtrip;
      Alcotest.test_case "vbatch over server" `Quick test_vbatch_over_server;
      Alcotest.test_case "counted read big-endian" `Quick test_counted_read_big_endian;
      Alcotest.test_case "covlink continue+drain" `Quick test_covlink_continue_and_drain;
    ]
