(* Deterministic trigger tests for every Table-2 bug: hand-built
   programs delivered over the debug link, with the expected crash
   signature asserted. These are the ground-truth integration tests the
   fuzzing experiments rest on. *)

open Eof_hw
open Eof_os
open Eof_agent
module Session = Eof_debug.Session

type exec_result =
  | Done of Wire.Results.t * string  (** results, uart log *)
  | Panicked of { log : string; fault : string }
  | Hung of int  (** stalled pc *)

let ok = function Ok v -> v | Error e -> Alcotest.fail (Session.error_to_string e)

let api_index table name =
  let rec go i = function
    | [] -> Alcotest.fail ("no api " ^ name)
    | (e : Eof_rtos.Api.entry) :: _ when e.Eof_rtos.Api.name = name -> i
    | _ :: rest -> go (i + 1) rest
  in
  go 0 table.Eof_rtos.Api.entries

type harness = {
  machine : Machine.t;
  session : Session.t;
  build : Osbuild.t;
  table : Eof_rtos.Api.table;
}

let make_harness spec board =
  let build = Osbuild.make ~board_profile:board spec in
  let machine = match Machine.create build with Ok m -> m | Error e -> Alcotest.fail (Eof_util.Eof_error.to_string e) in
  let session = Machine.session machine in
  let syms = Osbuild.syms build in
  List.iter
    (fun a -> ok (Session.set_breakpoint session a))
    [ syms.Osbuild.sym_executor_main; syms.Osbuild.sym_loop_back;
      syms.Osbuild.sym_handle_exception; syms.Osbuild.sym_buf_full ];
  { machine; session; build; table = Osbuild.api_signatures build }

let call h name args = { Wire.api_index = api_index h.table name; args }

(* Deliver and run one program, interpreting the stop like the campaign
   does but without any fuzzing machinery. *)
let exec h prog =
  let syms = Osbuild.syms h.build in
  let endianness = (Board.profile (Osbuild.board h.build)).Board.arch.Arch.endianness in
  let rec to_executor budget =
    if budget = 0 then Alcotest.fail "never reached executor_main";
    match ok (Session.continue_ h.session) with
    | Session.Stopped_breakpoint pc when pc = syms.Osbuild.sym_executor_main -> ()
    | _ -> to_executor (budget - 1)
  in
  to_executor 10;
  let payload = match Wire.encode ~endianness prog with Ok s -> s | Error e -> Alcotest.fail e in
  let header = Bytes.create 8 in
  (match endianness with
   | Arch.Little ->
     Bytes.set_int32_le header 0 Wire.magic;
     Bytes.set_int32_le header 4 (Int32.of_int (String.length payload))
   | Arch.Big ->
     Bytes.set_int32_be header 0 Wire.magic;
     Bytes.set_int32_be header 4 (Int32.of_int (String.length payload)));
  ok (Session.write_mem h.session ~addr:(Osbuild.mailbox_base h.build)
        (Bytes.to_string header ^ payload));
  let rec drive budget last_pc =
    if budget = 0 then Alcotest.fail "program did not settle" else
    match ok (Session.continue_ h.session) with
    | Session.Stopped_breakpoint pc when pc = syms.Osbuild.sym_loop_back ->
      let raw =
        ok (Session.read_mem h.session ~addr:(Agent.results_base h.build)
              ~len:(Wire.Results.byte_size (List.length prog)))
      in
      let results =
        match Wire.Results.read ~raw ~endianness with
        | Ok r -> r
        | Error e -> Alcotest.fail e
      in
      Done (results, ok (Session.drain_uart h.session))
    | Session.Stopped_breakpoint pc when pc = syms.Osbuild.sym_handle_exception ->
      let log = ok (Session.drain_uart h.session) in
      ignore (Session.continue_ h.session : (Session.stop, Session.error) result);
      let fault = ok (Session.last_fault h.session) in
      ok (Session.reset_target h.session);
      Panicked { log; fault }
    | Session.Stopped_breakpoint _ -> drive (budget - 1) None
    | Session.Stopped_fault _ ->
      let log = ok (Session.drain_uart h.session) in
      let fault = ok (Session.last_fault h.session) in
      ok (Session.reset_target h.session);
      Panicked { log; fault }
    | Session.Stopped_quantum pc ->
      (match last_pc with
       | Some prev when prev = pc ->
         ok (Session.reset_target h.session);
         Hung pc
       | _ -> drive (budget - 1) (Some pc))
    | Session.Target_exited -> Alcotest.fail "target exited"
  in
  drive 100 None

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let expect_panic ~bug ~needle result =
  match result with
  | Panicked { log; fault } ->
    Alcotest.(check bool)
      (Printf.sprintf "bug #%d signature (%s) in log/fault:\n%s\n%s" bug needle log fault)
      true
      (contains ~needle log || contains ~needle fault)
  | Done (_, log) -> Alcotest.fail (Printf.sprintf "bug #%d: no crash; log:\n%s" bug log)
  | Hung _ -> Alcotest.fail (Printf.sprintf "bug #%d: hung instead of panicking" bug)

let zephyr () = make_harness Zephyr.spec Profiles.stm32f4_disco

let rtthread () = make_harness Rtthread.spec Profiles.stm32f4_disco

let nuttx () = make_harness Nuttx.spec Profiles.stm32h745_nucleo

let freertos () = make_harness Freertos.spec Profiles.esp32_devkitc

let i v = Wire.W_int v

let r k = Wire.W_res k

let s v = Wire.W_str v

(* #1 Zephyr sys_heap_stress: oversized aligned stress shears a header. *)
let bug_1 () =
  let h = zephyr () in
  expect_panic ~bug:1 ~needle:"heap metadata corrupted"
    (exec h
       [ call h "k_heap_init" [ i 1024L ];
         call h "sys_heap_stress" [ r 0; i 131072L; i 1L ] ])

(* #2 Zephyr z_impl_k_msgq_get after purge-with-pending-data. *)
let bug_2 () =
  let h = zephyr () in
  expect_panic ~bug:2 ~needle:"dangling ring buffer"
    (exec h
       [ call h "k_msgq_create" [ i 4L; i 16L ];
         call h "k_msgq_put" [ r 0; s "payload" ];
         call h "k_msgq_purge" [ r 0 ];
         call h "z_impl_k_msgq_get" [ r 0 ] ])

(* #3 Zephyr json_obj_encode stack overflow. *)
let bug_3 () =
  let h = zephyr () in
  expect_panic ~bug:3 ~needle:"encoder stack overflow"
    (exec h [ call h "syz_json_deep_encode" [ i 12L ] ]);
  (* Also reachable through the plain API with a deep document. *)
  let h = zephyr () in
  let deep = String.concat "" (List.init 10 (fun _ -> "[")) ^ "1"
             ^ String.concat "" (List.init 10 (fun _ -> "]")) in
  expect_panic ~bug:3 ~needle:"encoder stack overflow"
    (exec h [ call h "json_obj_encode" [ s deep ] ])

(* #4 Zephyr k_heap_init's unchecked result. *)
let bug_4 () =
  let h = zephyr () in
  expect_panic ~bug:4 ~needle:"k_heap_init result unchecked"
    (exec h [ call h "k_heap_init" [ i 8L ]; call h "k_heap_alloc" [ r 0; i 16L ] ])

(* #5 RT-Thread rt_object_get_type on a detached object: assert + hang. *)
let bug_5 () =
  let h = rtthread () in
  match
    exec h
      [ call h "rt_event_create" [];
        call h "rt_object_detach" [ r 0 ];
        call h "rt_object_get_type" [ r 0 ] ]
  with
  | Hung _ -> ()
  | Done _ -> Alcotest.fail "bug #5: completed"
  | Panicked _ -> Alcotest.fail "bug #5: panicked (expected hang)"

(* #6 RT-Thread service list walk over a dangling node. *)
let bug_6 () =
  let h = rtthread () in
  expect_panic ~bug:6 ~needle:"dangling service-list node"
    (exec h
       [ call h "rt_service_register" [];
         call h "rt_service_unregister" [ r 0 ];
         call h "rt_service_poll" [] ])

(* #7 RT-Thread zero-stride memory pool. *)
let bug_7 () =
  let h = rtthread () in
  expect_panic ~bug:7 ~needle:"free-list walk diverges"
    (exec h [ call h "rt_mp_create" [ i 0L; i 4L ]; call h "rt_mp_alloc" [ r 0 ] ])

(* #8 RT-Thread double rt_object_init: assertion, execution continues. *)
let bug_8 () =
  let h = rtthread () in
  match
    exec h [ call h "rt_object_init" [ i 3L ]; call h "rt_object_init" [ i 3L ] ]
  with
  | Done (results, log) ->
    Alcotest.(check int) "both executed" 2 results.Wire.Results.executed;
    Alcotest.(check bool) "assertion logged" true
      (contains ~needle:"ASSERTION FAILED: rt_object_init" log)
  | Panicked _ -> Alcotest.fail "bug #8: panicked (expected soft assertion)"
  | Hung _ -> Alcotest.fail "bug #8: hung"

(* #9 RT-Thread _heap_lock re-entry from timer context. *)
let bug_9 () =
  let h = rtthread () in
  expect_panic ~bug:9 ~needle:"_heap_lock re-entered"
    (exec h
       [ call h "rt_malloc" [ i 64L ];
         call h "rt_timer_create" [ i 1L; i 3L (* periodic | allocating *) ];
         call h "rt_timer_start" [ r 1 ];
         call h "rt_free" [ r 0 ] ])

(* #10 RT-Thread rt_event_send to a deleted event. *)
let bug_10 () =
  let h = rtthread () in
  expect_panic ~bug:10 ~needle:"waiter-queue corruption"
    (exec h
       [ call h "rt_event_create" [];
         call h "rt_event_delete" [ r 0 ];
         call h "rt_event_send" [ r 0; i 5L ] ])

(* #11 RT-Thread rt_smem_setname overflowing into the next header. *)
let bug_11 () =
  let h = rtthread () in
  expect_panic ~bug:11 ~needle:"heap metadata corrupted"
    (exec h
       [ call h "rt_smem_alloc" [ i 8L ];
         call h "rt_smem_setname" [ r 0; s "name_that_is_quite_long_indeed" ] ])

(* #12 RT-Thread stale console serial device: the §5.3.1 case study,
   with the paper's exact Figure-6 arguments. *)
let bug_12 () =
  let h = rtthread () in
  (match
     exec h
       [ call h "rt_serial_ctrl" [ i 1L (* detach *) ];
         call h "syz_create_bind_socket" [ i 0xbc78L; i 0x0L; i 0x101L; i 0x0L ] ]
   with
   | Panicked { log; fault } ->
     Alcotest.(check bool) "stale serial fault" true
       (contains ~needle:"stale serial device" log || contains ~needle:"stale serial device" fault);
     Alcotest.(check bool) "case-study backtrace frame" true
       (contains ~needle:"rt_serial_write" log)
   | Done _ -> Alcotest.fail "bug #12: no crash"
   | Hung _ -> Alcotest.fail "bug #12: hung");
  (* The direct write path dies the same way. *)
  let h = rtthread () in
  expect_panic ~bug:12 ~needle:"stale serial device"
    (exec h
       [ call h "rt_serial_ctrl" [ i 1L ]; call h "rt_device_write" [ s "hello" ] ])

(* #13 FreeRTOS load_partitions on the poisoned backup table. *)
let bug_13 () =
  let h = freertos () in
  expect_panic ~bug:13 ~needle:"overlapping partition entries"
    (exec h [ call h "load_partitions" [ i (Int64.of_int Freertos.backup_table_flash_offset) ] ]);
  (* Other aligned offsets fail gracefully (no magic). *)
  let h = freertos () in
  match exec h [ call h "load_partitions" [ i 0x2000L ] ] with
  | Done (results, _) ->
    Alcotest.(check (list int32)) "ENOENT" [ -2l ] results.Wire.Results.statuses
  | _ -> Alcotest.fail "clean offset crashed"

(* #14 NuttX setenv env-arena overflow. *)
let bug_14 () =
  let h = nuttx () in
  let big = String.make 90 'v' in
  expect_panic ~bug:14 ~needle:"heap metadata corrupted"
    (exec h
       (List.init 7 (fun k ->
            call h "setenv" [ s (Printf.sprintf "VARIABLE_%d" k); s big ])))

(* #15 NuttX gettimeofday with an unaligned pointer. *)
let bug_15 () =
  let h = nuttx () in
  let ram_base = (Board.profile (Osbuild.board h.build)).Board.ram_base in
  expect_panic ~bug:15 ~needle:"unaligned timeval store"
    (exec h [ call h "gettimeofday" [ i (Int64.of_int (ram_base + 0x9002)) ] ]);
  (* An aligned pointer works and writes through. *)
  let h = nuttx () in
  let ram_base = (Board.profile (Osbuild.board h.build)).Board.ram_base in
  match exec h [ call h "gettimeofday" [ i (Int64.of_int (ram_base + 0x9000)) ] ] with
  | Done (results, _) ->
    Alcotest.(check (list int32)) "aligned OK" [ 0l ] results.Wire.Results.statuses
  | _ -> Alcotest.fail "aligned gettimeofday crashed"

(* #16 NuttX nxmq_timedsend deadline overflow on a full queue. *)
let bug_16 () =
  let h = nuttx () in
  expect_panic ~bug:16 ~needle:"deadline overflow"
    (exec h
       [ call h "mq_open" [ i 1L; i 8L ];
         call h "mq_send" [ r 0; s "fill" ];
         call h "nxmq_timedsend" [ r 0; s "more"; i 21500000L ] ]);
  (* Outside the wrap window, the call times out gracefully. *)
  let h = nuttx () in
  match
    exec h
      [ call h "mq_open" [ i 1L; i 8L ];
        call h "mq_send" [ r 0; s "fill" ];
        call h "nxmq_timedsend" [ r 0; s "more"; i 4294967295L ] ]
  with
  | Done (results, _) ->
    Alcotest.(check (list int32)) "graceful timeout" [ 0l; 0l; -110l ]
      results.Wire.Results.statuses
  | _ -> Alcotest.fail "out-of-window timeout crashed"

(* #17 NuttX nxsem_trywait on a destroyed semaphore: soft assertion. *)
let bug_17 () =
  let h = nuttx () in
  match
    exec h
      [ call h "sem_init" [ i 1L ];
        call h "sem_destroy" [ r 0 ];
        call h "nxsem_trywait" [ r 0 ] ]
  with
  | Done (results, log) ->
    Alcotest.(check int) "all executed" 3 results.Wire.Results.executed;
    Alcotest.(check bool) "assertion logged" true
      (contains ~needle:"ASSERTION FAILED: nxsem_trywait" log)
  | Panicked _ -> Alcotest.fail "bug #17: panicked (expected soft assertion)"
  | Hung _ -> Alcotest.fail "bug #17: hung"

(* #18 NuttX timer_create with an invalid clock id but valid sigevent. *)
let bug_18 () =
  let h = nuttx () in
  expect_panic ~bug:18 ~needle:"clock table overrun"
    (exec h [ call h "timer_create" [ i 16L; i 6L ] ]);
  (* Invalid clock id with no sigevent is rejected gracefully. *)
  let h = nuttx () in
  match exec h [ call h "timer_create" [ i 16L; i 0L ] ] with
  | Done (results, _) ->
    Alcotest.(check (list int32)) "EINVAL" [ -22l ] results.Wire.Results.statuses
  | _ -> Alcotest.fail "graceful path crashed"

(* #19 NuttX clock_getres with a NULL result pointer. *)
let bug_19 () =
  let h = nuttx () in
  expect_panic ~bug:19 ~needle:"NULL res pointer"
    (exec h [ call h "clock_getres" [ i 16L; i 0L ] ])

(* Not a bug: the filesystem surface works over the wire (open, write,
   read, close, unlink as one dependent sequence). *)
let nuttx_fs_functional () =
  let h = nuttx () in
  match
    exec h
      [ call h "nx_open" [ s "/data/cfg"; i 3L (* creat|wronly *) ];
        call h "nx_write" [ r 0; s "telemetry" ];
        call h "nx_open" [ s "/data/cfg"; i 0L ];
        call h "nx_read" [ r 2; i 64L ];
        call h "nx_close" [ r 0 ];
        call h "nx_unlink" [ s "/data/cfg" ] ]
  with
  | Done (results, _) ->
    Alcotest.(check (list int32)) "all succeed" [ 0l; 9l; 0l; 0l; 0l; 0l ]
      results.Wire.Results.statuses
  | Panicked { log; fault } -> Alcotest.fail ("fs sequence panicked: " ^ log ^ fault)
  | Hung _ -> Alcotest.fail "fs sequence hung"

let suite =
  [
    Alcotest.test_case "nuttx fs over the wire" `Quick nuttx_fs_functional;
    Alcotest.test_case "#1 zephyr sys_heap_stress" `Quick bug_1;
    Alcotest.test_case "#2 zephyr k_msgq_get after purge" `Quick bug_2;
    Alcotest.test_case "#3 zephyr json_obj_encode" `Quick bug_3;
    Alcotest.test_case "#4 zephyr k_heap_init" `Quick bug_4;
    Alcotest.test_case "#5 rt-thread rt_object_get_type hang" `Quick bug_5;
    Alcotest.test_case "#6 rt-thread rt_list_isempty" `Quick bug_6;
    Alcotest.test_case "#7 rt-thread rt_mp_alloc" `Quick bug_7;
    Alcotest.test_case "#8 rt-thread rt_object_init assert" `Quick bug_8;
    Alcotest.test_case "#9 rt-thread _heap_lock re-entry" `Quick bug_9;
    Alcotest.test_case "#10 rt-thread rt_event_send" `Quick bug_10;
    Alcotest.test_case "#11 rt-thread rt_smem_setname" `Quick bug_11;
    Alcotest.test_case "#12 rt-thread rt_serial_write (case study)" `Quick bug_12;
    Alcotest.test_case "#13 freertos load_partitions" `Quick bug_13;
    Alcotest.test_case "#14 nuttx setenv" `Quick bug_14;
    Alcotest.test_case "#15 nuttx gettimeofday" `Quick bug_15;
    Alcotest.test_case "#16 nuttx nxmq_timedsend" `Quick bug_16;
    Alcotest.test_case "#17 nuttx nxsem_trywait assert" `Quick bug_17;
    Alcotest.test_case "#18 nuttx timer_create" `Quick bug_18;
    Alcotest.test_case "#19 nuttx clock_getres" `Quick bug_19;
  ]

(* Functional: Zephyr work items run off the system work queue and post
   their completion bits. *)
let zephyr_workqueue_functional () =
  let h = zephyr () in
  match
    exec h
      [ call h "k_event_create" [];
        call h "k_work_init" [ i 3L ];
        call h "k_work_submit" [ r 1 ];
        call h "k_sleep" [ i 5L ];  (* ticks drain the work queue *)
        call h "k_event_wait" [ r 0; i 8L (* 1 lsl 3 *); i 0L ] ]
  with
  | Done (results, _) ->
    (match results.Wire.Results.statuses with
     | [ _; _; submit; _; wait ] ->
       Alcotest.(check int32) "submit ok" 0l submit;
       Alcotest.(check int32) "completion bit observed" 8l wait
     | _ -> Alcotest.fail "wrong arity")
  | Panicked { log; fault } -> Alcotest.fail ("workq panicked: " ^ log ^ fault)
  | Hung _ -> Alcotest.fail "workq hung"

let suite =
  suite @ [ Alcotest.test_case "zephyr work queue functional" `Quick zephyr_workqueue_functional ]
