open Eof_os
module Gen = Eof_core.Gen
module Prog = Eof_core.Prog
module Corpus = Eof_core.Corpus
module Feedback = Eof_core.Feedback
module Monitor = Eof_core.Monitor
module Crash = Eof_core.Crash
module Campaign = Eof_core.Campaign
module Liveness = Eof_core.Liveness

let zephyr_env =
  lazy
    (let build = Osbuild.make ~board_profile:Eof_hw.Profiles.stm32f4_disco Zephyr.spec in
     let table = Osbuild.api_signatures build in
     let spec =
       match Eof_spec.Synth.validated_of_api table with
       | Ok s -> s
       | Error e -> failwith e
     in
     (build, table, spec))

let make_gen ?(dep_aware = true) seed =
  let _, table, spec = Lazy.force zephyr_env in
  Gen.create ~dep_aware ~rng:(Eof_util.Rng.create seed) ~spec ~table ()

let test_generate_valid_programs () =
  let gen = make_gen 1L in
  for _ = 1 to 200 do
    let prog = Gen.generate gen ~max_len:10 in
    Alcotest.(check bool) "non-empty" true (Prog.length prog >= 1);
    (match Prog.validate prog with
     | Ok () -> ()
     | Error e -> Alcotest.fail (e ^ "\n" ^ Prog.to_string prog));
    (* And the wire encoding must accept it. *)
    match Eof_agent.Wire.encode ~endianness:Eof_hw.Arch.Little (Prog.to_wire prog) with
    | Ok _ -> ()
    | Error e -> Alcotest.fail ("wire: " ^ e)
  done

let test_mutate_preserves_validity () =
  let gen = make_gen 2L in
  let prog = ref (Gen.generate gen ~max_len:8) in
  for _ = 1 to 300 do
    prog := Gen.mutate gen !prog ~max_len:16;
    Alcotest.(check bool) "non-empty" true (Prog.length !prog >= 1);
    Alcotest.(check bool) "within cap" true (Prog.length !prog <= 16 + 2);
    match Prog.validate !prog with
    | Ok () -> ()
    | Error e -> Alcotest.fail (e ^ "\n" ^ Prog.to_string !prog)
  done

let test_generation_respects_dependencies () =
  let gen = make_gen 3L in
  (* Resource-consuming calls must always reference a matching earlier
     producer in dep-aware mode; validate already enforces this, so a
     large sample is enough. *)
  for _ = 1 to 100 do
    let prog = Gen.generate gen ~max_len:12 in
    List.iteri
      (fun i (call : Prog.call) ->
        List.iter2
          (fun arg (_, ty) ->
            match (arg, ty) with
            | Prog.Res k, Eof_spec.Ast.Ty_res kind ->
              let producer = List.nth prog k in
              Alcotest.(check bool)
                (Printf.sprintf "call %d ref kind" i)
                true
                (producer.Prog.spec.Eof_spec.Ast.ret = Some kind)
            | _ -> ())
          call.Prog.args call.Prog.spec.Eof_spec.Ast.args)
      prog
  done

let test_substitute () =
  let gen = make_gen 4L in
  let _, table, spec = Lazy.force zephyr_env in
  ignore table;
  let call_named name =
    List.find (fun (c : Eof_spec.Ast.call) -> c.Eof_spec.Ast.name = name) spec.Eof_spec.Ast.calls
  in
  let sleep = call_named "k_sleep" in
  let prog = [ { Prog.spec = sleep; api_index = 5; args = [ Prog.Int 40L ] } ] in
  (* Pair (40, 200): the argument 40 was compared against 200. The
     patch is the constant or its off-by-one neighbours. *)
  (match Gen.substitute gen prog ~pairs:[ (40L, 200L) ] with
   | Some [ { Prog.args = [ Prog.Int v ]; _ } ]
     when Int64.abs (Int64.sub v 200L) <= 1L -> ()
   | Some p -> Alcotest.fail ("unexpected substitution\n" ^ Prog.to_string p)
   | None -> Alcotest.fail "no substitution found");
  (* substitute_all enumerates the exact constant and constant+1. *)
  (match Gen.substitute_all gen prog ~pairs:[ (40L, 200L) ] with
   | [ [ { Prog.args = [ Prog.Int 200L ]; _ } ]; [ { Prog.args = [ Prog.Int 201L ]; _ } ] ] -> ()
   | children ->
     Alcotest.fail (Printf.sprintf "substitute_all: %d children" (List.length children)));
  (* Trivial pairs are ignored. *)
  (match Gen.substitute gen prog ~pairs:[ (40L, 1L) ] with
   | None -> ()
   | Some _ -> Alcotest.fail "noisy pair used");
  (* No matching argument -> None. *)
  match Gen.substitute gen prog ~pairs:[ (999L, 200L) ] with
  | None -> ()
  | Some _ -> Alcotest.fail "phantom match"

let test_int_hints_used () =
  let gen = make_gen 5L in
  Gen.add_int_hint gen 12345L;
  Gen.add_int_hint gen 12345L;
  Alcotest.(check int) "dedup" 1 (Gen.hint_count gen);
  (* With a single hint, gen_value over a wide range must eventually
     produce it. *)
  let seen = ref false in
  for _ = 1 to 500 do
    match Gen.gen_value gen ~produced:(fun _ -> []) (Eof_spec.Ast.Ty_int { min = 0L; max = 100000L }) with
    | Prog.Int 12345L -> seen := true
    | _ -> ()
  done;
  Alcotest.(check bool) "hint replayed" true !seen

let test_corpus_dedup_and_pick () =
  let rng = Eof_util.Rng.create 6L in
  let corpus = Corpus.create ~rng () in
  let gen = make_gen 7L in
  let p1 = Gen.generate gen ~max_len:4 in
  Alcotest.(check bool) "added" true (Corpus.add corpus ~prog:p1 ~new_edges:3 ~crashed:false);
  Alcotest.(check bool) "dup rejected" false
    (Corpus.add corpus ~prog:p1 ~new_edges:3 ~crashed:false);
  Alcotest.(check int) "size" 1 (Corpus.size corpus);
  (match Corpus.pick corpus with
   | Some p -> Alcotest.(check bool) "pick returns seed" true (Prog.hash p = Prog.hash p1)
   | None -> Alcotest.fail "empty pick");
  Alcotest.(check int) "total" 1 (Corpus.total_added corpus)

let test_corpus_eviction () =
  let rng = Eof_util.Rng.create 8L in
  let corpus = Corpus.create ~capacity:4 ~rng () in
  let gen = make_gen 9L in
  for i = 1 to 10 do
    ignore
      (Corpus.add corpus ~prog:(Gen.generate gen ~max_len:6) ~new_edges:i ~crashed:false
        : bool)
  done;
  Alcotest.(check bool) "bounded" true (Corpus.size corpus <= 5)

let test_corpus_merge_dedup_across_shards () =
  (* Two shards discover overlapping seed sets; merging both into a
     global corpus must import each program once, whichever shard
     contributed it first. *)
  let gen = make_gen 31L in
  let p1 = Gen.generate gen ~max_len:4 in
  let p2 = Gen.generate gen ~max_len:4 in
  let p3 = Gen.generate gen ~max_len:4 in
  let shard seed progs =
    let c = Corpus.create ~rng:(Eof_util.Rng.create seed) () in
    List.iter
      (fun prog -> ignore (Corpus.add c ~prog ~new_edges:2 ~crashed:false : bool))
      progs;
    c
  in
  let a = shard 1L [ p1; p2 ] in
  let b = shard 2L [ p2; p3 ] in
  let global = Corpus.create ~rng:(Eof_util.Rng.create 3L) () in
  Alcotest.(check int) "all of shard A imported" 2 (Corpus.merge global a);
  (* p2 is a cross-shard duplicate: only p3 is new. *)
  Alcotest.(check int) "shard B deduplicated" 1 (Corpus.merge global b);
  Alcotest.(check int) "global size" 3 (Corpus.size global);
  Alcotest.(check int) "re-merge is a no-op" 0 (Corpus.merge global a);
  (* Addition order is preserved: oldest-first from A, then the novel
     tail of B. *)
  Alcotest.(check bool) "merge order" true
    (List.map Prog.hash (Corpus.progs global) = List.map Prog.hash [ p3; p2; p1 ]);
  (* Source corpora are untouched. *)
  Alcotest.(check int) "shard A intact" 2 (Corpus.size a);
  Alcotest.(check int) "shard B intact" 2 (Corpus.size b)

let test_corpus_merge_eviction_order () =
  (* Merging into a bounded corpus evicts exactly as add does: the
     lowest-scoring seed goes first once capacity is exceeded. *)
  let gen = make_gen 32L in
  let progs = List.init 6 (fun _ -> Gen.generate gen ~max_len:4) in
  let src = Corpus.create ~rng:(Eof_util.Rng.create 4L) () in
  List.iteri
    (fun i prog ->
      (* Scores 4, 8, 12, 16, 20, 24: seed 0 is the weakest. *)
      ignore (Corpus.add src ~prog ~new_edges:(i + 1) ~crashed:false : bool))
    progs;
  let dst = Corpus.create ~capacity:4 ~rng:(Eof_util.Rng.create 5L) () in
  let imported = Corpus.merge dst src in
  Alcotest.(check int) "all were imported (then evicted)" 6 imported;
  Alcotest.(check bool) "capacity respected" true (Corpus.size dst <= 5);
  let surviving = List.map Prog.hash (Corpus.progs dst) in
  (* The weakest seed (first added, score 4) must be gone; the
     strongest (last added, score 24) must survive. *)
  Alcotest.(check bool) "weakest evicted" false
    (List.mem (Prog.hash (List.nth progs 0)) surviving);
  Alcotest.(check bool) "strongest survives" true
    (List.mem (Prog.hash (List.nth progs 5)) surviving);
  (* An evicted program stays known by hash: merging it again is a
     duplicate, not a re-import. *)
  Alcotest.(check int) "evicted hash still rejected" 0 (Corpus.merge dst src)

let test_feedback_merge () =
  let fb = Feedback.create ~edge_capacity:100 in
  Alcotest.(check int) "first merge" 3 (Feedback.merge fb [ 1; 2; 3 ]);
  Alcotest.(check int) "repeat merge" 0 (Feedback.merge fb [ 1; 2; 3 ]);
  Alcotest.(check int) "partial" 1 (Feedback.merge fb [ 3; 4 ]);
  Alcotest.(check int) "out of range ignored" 0 (Feedback.merge fb [ -1; 100; 40000 ]);
  Alcotest.(check int) "covered" 4 (Feedback.covered fb)

let test_monitor_patterns () =
  let log =
    "[Zephyr] booted\n\
     [Zephyr] KERNEL PANIC: encoder stack overflow\n\
     Stack frames at BUG: unexpected stop:\n\
    \  Level 1: lib/utils/json.c : json_obj_encode : 733\n\
    \  Level 2: lib/utils/json.c : encode : 684\n\
     [RT-Thread] ASSERTION FAILED: rt_object_init: slot 3 already initialised\n\
     [NuttX] ERROR: something else\n"
  in
  let detections = Monitor.scan log in
  (match Monitor.first_panic detections with
   | Some (os, msg) ->
     Alcotest.(check string) "panic os" "Zephyr" os;
     Alcotest.(check string) "panic msg" "encoder stack overflow" msg
   | None -> Alcotest.fail "panic missed");
  (match Monitor.first_assertion detections with
   | Some (os, msg) ->
     Alcotest.(check string) "assert os" "RT-Thread" os;
     Alcotest.(check (option string)) "assert op" (Some "rt_object_init")
       (Monitor.assert_operation msg)
   | None -> Alcotest.fail "assertion missed");
  Alcotest.(check int) "backtrace frames" 2
    (List.length (Monitor.collect_backtrace detections))

let test_crash_dedup_key () =
  let mk op kind =
    {
      Crash.os = "Zephyr";
      kind;
      operation = op;
      scope = "kernel";
      message = "m";
      backtrace = [];
      detected_by = Crash.Exception_monitor;
      program = "";
      iteration = 0;
    }
  in
  Alcotest.(check bool) "same bug same key" true
    (Crash.dedup_key (mk "f" Crash.Kernel_panic) = Crash.dedup_key (mk "f" Crash.Kernel_panic));
  Alcotest.(check bool) "different op different key" true
    (Crash.dedup_key (mk "f" Crash.Kernel_panic) <> Crash.dedup_key (mk "g" Crash.Kernel_panic));
  Alcotest.(check bool) "different kind different key" true
    (Crash.dedup_key (mk "f" Crash.Kernel_panic)
    <> Crash.dedup_key (mk "f" Crash.Kernel_assertion))

let test_campaign_smoke () =
  let build, _, _ = Lazy.force zephyr_env in
  ignore build;
  (* A fresh build: campaigns mutate board state. *)
  let build = Osbuild.make ~board_profile:Eof_hw.Profiles.stm32f4_disco Zephyr.spec in
  let config = { Campaign.default_config with iterations = 120; seed = 99L } in
  match Campaign.run config build with
  | Error e -> Alcotest.fail (Eof_util.Eof_error.to_string e)
  | Ok o ->
    Alcotest.(check int) "all iterations ran" 120 o.Campaign.iterations_done;
    Alcotest.(check bool) "coverage found" true (o.Campaign.coverage > 0);
    Alcotest.(check bool) "programs executed" true (o.Campaign.executed_programs > 0);
    Alcotest.(check bool) "series sampled" true (List.length o.Campaign.series > 5);
    Alcotest.(check bool) "series monotonic" true
      (let rec mono = function
         | (a : Campaign.sample) :: (b :: _ as rest) ->
           a.Campaign.coverage <= b.Campaign.coverage && mono rest
         | _ -> true
       in
       mono o.Campaign.series)

let test_campaign_deterministic () =
  let run () =
    let build = Osbuild.make ~board_profile:Eof_hw.Profiles.stm32f4_disco Zephyr.spec in
    match
      Campaign.run { Campaign.default_config with iterations = 80; seed = 7L } build
    with
    | Ok o -> (o.Campaign.coverage, o.Campaign.crash_events, o.Campaign.executed_programs)
    | Error e -> Alcotest.fail (Eof_util.Eof_error.to_string e)
  in
  Alcotest.(check bool) "same seed, same outcome" true (run () = run ())

let test_campaign_finds_zephyr_bugs () =
  (* Union over two seeds, as the evaluation protocol does: single-seed
     bug sets vary. *)
  let run seed =
    let build = Osbuild.make ~board_profile:Eof_hw.Profiles.stm32f4_disco Zephyr.spec in
    let config = { Campaign.default_config with iterations = 2000; seed } in
    match Campaign.run config build with
    | Error e -> Alcotest.fail (Eof_util.Eof_error.to_string e)
    | Ok o -> Eof_expt.Targets.found_ids o.Campaign.crashes
  in
  let ids = List.sort_uniq compare (run 42L @ run 1337L) in
  Alcotest.(check bool)
    (Printf.sprintf "found several Zephyr bugs (got {%s})"
       (String.concat "," (List.map string_of_int ids)))
    true
    (List.length ids >= 3)

let test_campaign_api_filter () =
  let build =
    Osbuild.make
      ~instrument:(Osbuild.Instrument_only [ Freertos.json_module ])
      ~board_profile:Eof_hw.Profiles.esp32_devkitc Freertos.spec
  in
  let config =
    {
      Campaign.default_config with
      iterations = 100;
      seed = 1L;
      api_filter = Some [ "json_parse" ];
    }
  in
  match Campaign.run config build with
  | Error e -> Alcotest.fail (Eof_util.Eof_error.to_string e)
  | Ok o ->
    Alcotest.(check bool) "json coverage only" true (o.Campaign.coverage > 0);
    (* Only the JSON block records edges, so coverage stays well below a
       full-system run's. *)
    Alcotest.(check bool) "confined" true (o.Campaign.coverage < 150)

let test_liveness_restore_over_session () =
  let build = Osbuild.make ~board_profile:Eof_hw.Profiles.stm32f4_disco Zephyr.spec in
  let machine =
    match Eof_agent.Machine.create build with Ok m -> m | Error e -> Alcotest.fail (Eof_util.Eof_error.to_string e)
  in
  let board = Osbuild.board build in
  (* Damage flash, then restore through the documented procedure. *)
  Eof_hw.Flash.corrupt (Eof_hw.Board.flash board)
    ~addr:(Eof_hw.Flash.base (Eof_hw.Board.flash board) + 0x5000)
    "XX";
  Alcotest.(check bool) "damaged" false (Eof_hw.Board.boot_ok board);
  (match Liveness.restore machine ~build with
   | Ok n -> Alcotest.(check int) "three partitions" 3 n
   | Error e -> Alcotest.fail (Liveness.error_to_string e));
  Alcotest.(check bool) "boots" true (Eof_hw.Board.boot_ok board)

let test_liveness_watchdog_timeout () =
  let build = Osbuild.make ~board_profile:Eof_hw.Profiles.stm32f4_disco Zephyr.spec in
  let transport = Eof_debug.Transport.create () in
  let machine =
    match Eof_agent.Machine.create ~transport build with
    | Ok m -> m
    | Error e -> Alcotest.fail (Eof_util.Eof_error.to_string e)
  in
  let wd = Liveness.create () in
  (match Liveness.check wd machine with
   | Liveness.First_observation -> ()
   | _ -> Alcotest.fail "expected first observation");
  Eof_debug.Transport.set_failure_mode transport Eof_debug.Transport.Down;
  (match Liveness.check wd machine with
   | Liveness.Connection_lost -> ()
   | _ -> Alcotest.fail "expected connection-lost verdict");
  Eof_debug.Transport.set_failure_mode transport Eof_debug.Transport.Up

let prop_mutation_grows_bounded =
  QCheck.Test.make ~name:"mutation keeps programs bounded and valid" ~count:50
    QCheck.(int_bound 1000)
    (fun seed ->
      let gen = make_gen (Int64.of_int (seed + 100)) in
      let prog = ref (Gen.generate gen ~max_len:6) in
      let ok = ref true in
      for _ = 1 to 40 do
        prog := Gen.mutate gen !prog ~max_len:12;
        ok := !ok && Prog.validate !prog = Ok () && Prog.length !prog >= 1
      done;
      !ok)

let suite =
  [
    Alcotest.test_case "generate valid programs" `Quick test_generate_valid_programs;
    Alcotest.test_case "mutate preserves validity" `Quick test_mutate_preserves_validity;
    Alcotest.test_case "generation respects dependencies" `Quick
      test_generation_respects_dependencies;
    Alcotest.test_case "i2s substitution" `Quick test_substitute;
    Alcotest.test_case "int hints used" `Quick test_int_hints_used;
    Alcotest.test_case "corpus dedup/pick" `Quick test_corpus_dedup_and_pick;
    Alcotest.test_case "corpus eviction" `Quick test_corpus_eviction;
    Alcotest.test_case "corpus merge dedups across shards" `Quick
      test_corpus_merge_dedup_across_shards;
    Alcotest.test_case "corpus merge eviction order" `Quick
      test_corpus_merge_eviction_order;
    Alcotest.test_case "feedback merge" `Quick test_feedback_merge;
    Alcotest.test_case "log monitor patterns" `Quick test_monitor_patterns;
    Alcotest.test_case "crash dedup key" `Quick test_crash_dedup_key;
    Alcotest.test_case "campaign smoke" `Quick test_campaign_smoke;
    Alcotest.test_case "campaign deterministic" `Quick test_campaign_deterministic;
    Alcotest.test_case "campaign finds zephyr bugs" `Slow test_campaign_finds_zephyr_bugs;
    Alcotest.test_case "campaign api filter" `Quick test_campaign_api_filter;
    Alcotest.test_case "liveness restore over session" `Quick
      test_liveness_restore_over_session;
    Alcotest.test_case "liveness watchdog timeout" `Quick test_liveness_watchdog_timeout;
    QCheck_alcotest.to_alcotest prop_mutation_grows_bounded;
  ]

(* --- minimization ----------------------------------------------------- *)

let mini_call name ret args : Prog.call =
  {
    Prog.spec = { Eof_spec.Ast.name; args = []; ret; weight = 1; doc = "" };
    api_index = 0;
    args;
  }

let test_remove_call_cascade () =
  (* c0 produces q; c1 consumes it; c2 independent; c3 consumes c2. *)
  let prog =
    [
      mini_call "mk_q" (Some "q") [];
      mini_call "use_q" None [ Prog.Res 0 ];
      mini_call "mk_s" (Some "s") [];
      mini_call "use_s" None [ Prog.Res 2 ];
    ]
  in
  (* Dropping c0 cascades to c1, and c3's reference renumbers to c2's
     new position. *)
  (match Eof_core.Minimize.remove_call prog 0 with
   | [ a; b ] ->
     Alcotest.(check string) "kept producer" "mk_s" a.Prog.spec.Eof_spec.Ast.name;
     Alcotest.(check string) "kept consumer" "use_s" b.Prog.spec.Eof_spec.Ast.name;
     Alcotest.(check bool) "renumbered" true (b.Prog.args = [ Prog.Res 0 ])
   | p -> Alcotest.fail (Printf.sprintf "cascade wrong: %d calls" (List.length p)));
  (* Dropping a leaf removes only itself. *)
  Alcotest.(check int) "leaf removal" 3
    (List.length (Eof_core.Minimize.remove_call prog 3))

let test_minimize_synthetic () =
  (* The "kernel" crashes iff the program contains use_q fed by mk_q with
     argument >= 5. *)
  let exec (prog : Prog.t) =
    let arr = Array.of_list prog in
    let crashes =
      Array.exists
        (fun (c : Prog.call) ->
          c.Prog.spec.Eof_spec.Ast.name = "use_q"
          && (match c.Prog.args with
              | [ Prog.Res k; Prog.Int v ] ->
                arr.(k).Prog.spec.Eof_spec.Ast.name = "mk_q" && Int64.compare v 5L >= 0
              | _ -> false))
        arr
    in
    if crashes then Eof_core.Minimize.Crash "boom" else Eof_core.Minimize.No_crash
  in
  let noise name = mini_call name None [ Prog.Int 1L ] in
  let prog =
    [
      noise "a";
      mini_call "mk_q" (Some "q") [];
      noise "b";
      mini_call "use_q" None [ Prog.Res 1; Prog.Int 9L ];
      noise "c";
    ]
  in
  let reduced, execs = Eof_core.Minimize.minimize ~exec ~signature:"boom" prog in
  Alcotest.(check int) "two calls survive" 2 (List.length reduced);
  Alcotest.(check bool) "still crashes" true (exec reduced = Eof_core.Minimize.Crash "boom");
  Alcotest.(check bool) "bounded effort" true (execs <= 200);
  (* The argument 9 cannot be simplified to 0 (crash needs >= 5), so it
     must survive as-is. *)
  match List.rev reduced with
  | { Prog.args = [ Prog.Res 0; Prog.Int v ]; _ } :: _ ->
    Alcotest.(check bool) "arg still triggering" true (Int64.compare v 5L >= 0)
  | _ -> Alcotest.fail "unexpected reduced shape"

let test_minimize_wrong_signature_keeps_original () =
  let exec _ = Eof_core.Minimize.Crash "other" in
  let prog = [ mini_call "a" None []; mini_call "b" None [] ] in
  let reduced, _ = Eof_core.Minimize.minimize ~exec ~signature:"boom" prog in
  Alcotest.(check int) "unchanged" 2 (List.length reduced)

let minimize_suite =
  [
    Alcotest.test_case "remove_call cascade" `Quick test_remove_call_cascade;
    Alcotest.test_case "minimize synthetic crash" `Quick test_minimize_synthetic;
    Alcotest.test_case "minimize keeps original on mismatch" `Quick
      test_minimize_wrong_signature_keeps_original;
  ]

let suite = suite @ minimize_suite

(* --- interrupt-path extension ------------------------------------------ *)

let test_irq_injection_covers_isr () =
  let build = Osbuild.make ~board_profile:Eof_hw.Profiles.stm32f4_disco Zephyr.spec in
  let config =
    { Campaign.default_config with iterations = 200; seed = 2L; irq_injection = true }
  in
  match Campaign.run config build with
  | Error e -> Alcotest.fail (Eof_util.Eof_error.to_string e)
  | Ok o ->
    let block = Option.get (Osbuild.module_block build "zephyr/irq") in
    let sitemap = Osbuild.sitemap build in
    let v = Eof_cov.Sancov.variants_per_site in
    let covered = ref 0 in
    for i = 0 to block.Eof_cov.Sitemap.count - 1 do
      let site_idx =
        Option.get
          (Eof_cov.Sitemap.index_of_addr sitemap (Eof_cov.Sitemap.site_addr block i))
      in
      for var = 0 to v - 1 do
        if Eof_util.Bitset.mem o.Campaign.coverage_bitmap ((site_idx * v) + var) then
          incr covered
      done
    done;
    Alcotest.(check bool) "ISR path covered under injection" true (!covered > 0)

let test_no_irq_injection_by_default () =
  (* The paper scopes interrupts out; the default config must not drive
     them spontaneously (only fuzzed *_irq_enable calls arm other pins,
     and nothing injects edges). *)
  let build = Osbuild.make ~board_profile:Eof_hw.Profiles.stm32f4_disco Zephyr.spec in
  let config = { Campaign.default_config with iterations = 150; seed = 2L } in
  match Campaign.run config build with
  | Error e -> Alcotest.fail (Eof_util.Eof_error.to_string e)
  | Ok o ->
    let block = Option.get (Osbuild.module_block build "zephyr/irq") in
    let sitemap = Osbuild.sitemap build in
    let v = Eof_cov.Sancov.variants_per_site in
    (* Sites 0-4 are the ISR body; they need an actual edge. *)
    let isr_covered = ref 0 in
    for i = 0 to 4 do
      let site_idx =
        Option.get
          (Eof_cov.Sitemap.index_of_addr sitemap (Eof_cov.Sitemap.site_addr block i))
      in
      for var = 0 to v - 1 do
        if Eof_util.Bitset.mem o.Campaign.coverage_bitmap ((site_idx * v) + var) then
          incr isr_covered
      done
    done;
    Alcotest.(check int) "ISR body unreached without injection" 0 !isr_covered

let suite =
  suite
  @ [
      Alcotest.test_case "irq injection covers ISR" `Quick test_irq_injection_covers_isr;
      Alcotest.test_case "no irq coverage by default" `Quick test_no_irq_injection_by_default;
    ]

(* --- resilience over a lossy probe link -------------------------------- *)

let test_campaign_survives_flaky_link () =
  let build = Osbuild.make ~board_profile:Eof_hw.Profiles.stm32f4_disco Zephyr.spec in
  let transport = Eof_debug.Transport.create ~rng:(Eof_util.Rng.create 77L) () in
  Eof_debug.Transport.set_failure_mode transport (Eof_debug.Transport.Flaky 0.01);
  let machine =
    match Eof_agent.Machine.create ~transport build with
    | Ok m -> m
    | Error e -> Alcotest.fail (Eof_util.Eof_error.to_string e)
  in
  let config = { Campaign.default_config with iterations = 150; seed = 3L } in
  match Campaign.run ~machine config build with
  | Error e -> Alcotest.fail ("flaky link killed the campaign: " ^ Eof_util.Eof_error.to_string e)
  | Ok o ->
    Alcotest.(check int) "all iterations" 150 o.Campaign.iterations_done;
    Alcotest.(check bool) "made progress" true (o.Campaign.coverage > 0);
    (* Losses now surface at the link layer: the session's retry rung
       cures lone flaky timeouts before they ever reach the campaign's
       escalation ladder, so campaign-level reflashes are no longer the
       evidence — transport timeouts plus a finished budget are. *)
    Alcotest.(check bool) "losses happened and were recovered" true
      (Eof_debug.Transport.timeouts transport > 0
      && Eof_debug.Session.retries (Eof_agent.Machine.session machine) > 0)

let suite =
  suite
  @ [ Alcotest.test_case "campaign survives flaky link" `Quick
        test_campaign_survives_flaky_link ]

(* --- crash reports ------------------------------------------------------ *)

let test_report_roundtrip () =
  let crash =
    {
      Crash.os = "Zephyr";
      kind = Crash.Kernel_panic;
      operation = "k_heap_alloc";
      scope = "kheap";
      message = "unaligned free-list head";
      backtrace = [ "a.c : f : 10"; "b.c : g : 20" ];
      detected_by = Crash.Exception_monitor;
      program = "0: k_heap_init(8) -> kheap";
      iteration = 7;
    }
  in
  let text = Eof_core.Report.crash_to_text crash in
  let contains needle =
    let nl = String.length needle and hl = String.length text in
    let rec go i = i + nl <= hl && (String.sub text i nl = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun needle -> Alcotest.(check bool) needle true (contains needle))
    [ "Zephyr"; "Kernel Panic"; "k_heap_alloc()"; "unaligned free-list";
      "Level 2: b.c : g : 20"; "k_heap_init(8)" ];
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "eof-report-test" in
  (match Eof_core.Report.save_crashes ~dir [ crash; { crash with Crash.operation = "other/op" } ] with
   | Ok [ p1; p2 ] ->
     Alcotest.(check bool) "file 1" true (Sys.file_exists p1);
     Alcotest.(check bool) "file 2 sanitized" true
       (Filename.basename p2 = "crash-02-other_op.txt")
   | Ok _ -> Alcotest.fail "wrong path count"
   | Error e -> Alcotest.fail e)

let suite = suite @ [ Alcotest.test_case "crash report roundtrip" `Quick test_report_roundtrip ]

(* --- cross-architecture / cross-endianness campaigns -------------------- *)

let test_campaign_on_riscv () =
  (* FreeRTOS on the RISC-V devkit (Table 1's second EOF row). *)
  let build = Osbuild.make ~board_profile:Eof_hw.Profiles.hifive1 Freertos.spec in
  let config = { Campaign.default_config with iterations = 150; seed = 12L } in
  match Campaign.run config build with
  | Error e -> Alcotest.fail (Eof_util.Eof_error.to_string e)
  | Ok o ->
    Alcotest.(check bool) "coverage on riscv" true (o.Campaign.coverage > 0);
    Alcotest.(check int) "iterations" 150 o.Campaign.iterations_done

let test_campaign_on_big_endian_board () =
  (* A PowerPC-style big-endian board: the whole stack — wire format,
     coverage records, cmp ring, RSP register dumps — must survive the
     byte-order flip. *)
  let profile =
    {
      Eof_hw.Board.name = "mpc5554-devkit";
      arch = Eof_hw.Arch.powerpc;
      flash_base = 0x0000_0000;
      flash_size = 2 * 1024 * 1024;
      sector_size = 16 * 1024;
      ram_base = 0x4000_0000;
      ram_size = 192 * 1024;
      cpu_mhz = 132;
      debug_port = Eof_hw.Board.Jtag;
      peripheral_emulation = false;
    }
  in
  let build = Osbuild.make ~board_profile:profile Zephyr.spec in
  let config = { Campaign.default_config with iterations = 200; seed = 13L } in
  match Campaign.run config build with
  | Error e -> Alcotest.fail (Eof_util.Eof_error.to_string e)
  | Ok o ->
    Alcotest.(check bool) "coverage on big-endian" true (o.Campaign.coverage > 20);
    Alcotest.(check bool) "programs executed" true (o.Campaign.executed_programs > 150)

let suite =
  suite
  @ [
      Alcotest.test_case "campaign on RISC-V board" `Quick test_campaign_on_riscv;
      Alcotest.test_case "campaign on big-endian board" `Quick
        test_campaign_on_big_endian_board;
    ]

(* --- corpus persistence -------------------------------------------------- *)

let test_corpus_io_roundtrip () =
  let _, table, spec = Lazy.force zephyr_env in
  let gen = make_gen 21L in
  let progs = List.init 20 (fun _ -> Gen.generate gen ~max_len:8) in
  let path = Filename.temp_file "eof-corpus" ".txt" in
  (match Eof_core.Corpus_io.save ~path progs with
   | Ok () -> ()
   | Error e -> Alcotest.fail e);
  match Eof_core.Corpus_io.load ~path ~spec ~table with
  | Error e -> Alcotest.fail e
  | Ok (loaded, skipped) ->
    Alcotest.(check int) "none skipped" 0 skipped;
    Alcotest.(check int) "all loaded" (List.length progs) (List.length loaded);
    List.iter2
      (fun a b -> Alcotest.(check int) "prog identical" (Prog.hash a) (Prog.hash b))
      progs loaded

let test_corpus_io_skips_stale () =
  let _, table, spec = Lazy.force zephyr_env in
  let text =
    "# eof corpus v1\n\
     prog\n\
    \  call k_sem_init int=1 int=5\n\
     end\n\
     prog\n\
    \  call api_that_no_longer_exists int=1\n\
     end\n\
     prog\n\
    \  call k_sem_take res=0\n\
     end\n"
    (* the third program's res=0 refers to a call that doesn't produce a sem *)
  in
  let path = Filename.temp_file "eof-corpus" ".txt" in
  let oc = open_out path in
  output_string oc text;
  close_out oc;
  match Eof_core.Corpus_io.load ~path ~spec ~table with
  | Error e -> Alcotest.fail e
  | Ok (loaded, skipped) ->
    Alcotest.(check int) "one good prog" 1 (List.length loaded);
    Alcotest.(check int) "two skipped" 2 skipped

let prop_corpus_io_roundtrip =
  QCheck.Test.make ~name:"corpus io roundtrip (generated programs)" ~count:50
    QCheck.(int_bound 10000)
    (fun seed ->
      let _, table, spec = Lazy.force zephyr_env in
      let gen = make_gen (Int64.of_int (seed + 500)) in
      let prog = Gen.generate gen ~max_len:10 in
      match
        Eof_core.Corpus_io.prog_of_lines ~spec ~table
          (String.split_on_char '\n' (Eof_core.Corpus_io.prog_to_text prog)
          |> List.filter (fun l ->
                 let t = String.trim l in
                 t <> "" && t <> "prog" && t <> "end"))
      with
      | Ok prog' -> Prog.hash prog = Prog.hash prog'
      | Error _ -> false)

let suite =
  suite
  @ [
      Alcotest.test_case "corpus io roundtrip" `Quick test_corpus_io_roundtrip;
      Alcotest.test_case "corpus io skips stale" `Quick test_corpus_io_skips_stale;
      QCheck_alcotest.to_alcotest prop_corpus_io_roundtrip;
    ]

(* --- staged devices drive the cmp gradient ------------------------------ *)

let test_statemach_solvable_by_eof_only () =
  (* The staged configuration sequence is the fixture that separates
     cmp-guided EOF from EOF-nf: with the same modest budget, EOF must
     climb visibly deeper into the sequence. *)
  let run feedback =
    let build = Osbuild.make ~board_profile:Eof_hw.Profiles.stm32f4_disco Zephyr.spec in
    let config =
      {
        Campaign.default_config with
        iterations = 800;
        seed = 47L;
        feedback;
        api_filter = Some [ "zpipe_open"; "zpipe_step"; "k_yield" ];
      }
    in
    match Campaign.run config build with
    | Error e -> Alcotest.fail (Eof_util.Eof_error.to_string e)
    | Ok o ->
      (* Count solved stages: the per-stage advance edges. *)
      let block = Option.get (Osbuild.module_block build "zephyr/pipe") in
      let sitemap = Osbuild.sitemap build in
      let v = Eof_cov.Sancov.variants_per_site in
      let solved = ref 0 in
      for stage = 0 to 9 do
        let site = Eof_cov.Sitemap.site_addr block (2 + 10 + stage) in
        match Eof_cov.Sitemap.index_of_addr sitemap site with
        | Some idx ->
          if Eof_util.Bitset.mem o.Campaign.coverage_bitmap (idx * v) then incr solved
        | None -> ()
      done;
      !solved
  in
  let eof = run true and nf = run false in
  Alcotest.(check bool)
    (Printf.sprintf "EOF climbs deeper (EOF %d stages vs EOF-nf %d)" eof nf)
    true
    (eof > nf && eof >= 3)

let suite =
  suite
  @ [ Alcotest.test_case "staged device needs cmp guidance" `Slow
        test_statemach_solvable_by_eof_only ]

(* --- batched vs unbatched debug link --------------------------------- *)

module Dsession = Eof_debug.Session
module Transport = Eof_debug.Transport

let run_linked ~batch_link ~iterations ~seed =
  let build = Osbuild.make ~board_profile:Eof_hw.Profiles.stm32f4_disco Zephyr.spec in
  let transport = Transport.create () in
  let machine =
    match Eof_agent.Machine.create ~transport build with
    | Ok m -> m
    | Error e -> Alcotest.fail (Eof_util.Eof_error.to_string e)
  in
  let config = { Campaign.default_config with iterations; seed; batch_link } in
  match Campaign.run ~machine config build with
  | Error e -> Alcotest.fail (Eof_util.Eof_error.to_string e)
  | Ok o ->
    ( o,
      Transport.exchanges transport,
      Dsession.requests (Eof_agent.Machine.session machine),
      Transport.elapsed_us transport )

let test_batched_equals_unbatched () =
  (* The tentpole invariant: batching changes link traffic, not fuzzing
     behaviour. Same seed, bit-identical coverage and crashes. *)
  let ob, exb, rqb, elb = run_linked ~batch_link:true ~iterations:120 ~seed:11L in
  let ou, exu, rqu, elu = run_linked ~batch_link:false ~iterations:120 ~seed:11L in
  Alcotest.(check int) "same coverage" ou.Campaign.coverage ob.Campaign.coverage;
  Alcotest.(check bool) "same coverage bitmap" true
    (Eof_util.Bitset.to_list ou.Campaign.coverage_bitmap
    = Eof_util.Bitset.to_list ob.Campaign.coverage_bitmap);
  Alcotest.(check int) "same executed programs" ou.Campaign.executed_programs
    ob.Campaign.executed_programs;
  Alcotest.(check int) "same crash events" ou.Campaign.crash_events ob.Campaign.crash_events;
  Alcotest.(check bool) "same deduplicated crashes" true
    (ou.Campaign.crashes = ob.Campaign.crashes);
  Alcotest.(check int) "same iterations" ou.Campaign.iterations_done ob.Campaign.iterations_done;
  (* And the link got dramatically quieter: the acceptance bar is >= 3x
     fewer exchanges and requests for the same campaign. *)
  Alcotest.(check bool)
    (Printf.sprintf "exchanges drop >=3x (%d -> %d)" exu exb)
    true
    (exu >= 3 * exb);
  Alcotest.(check bool)
    (Printf.sprintf "requests drop >=3x (%d -> %d)" rqu rqb)
    true
    (rqu >= 3 * rqb);
  Alcotest.(check bool)
    (Printf.sprintf "link time drops (%.0fus -> %.0fus)" elu elb)
    true
    (elb < elu)

let test_batched_flaky_deterministic () =
  (* Cross-mode equality is impossible under a flaky link (the two modes
     make different numbers of exchanges, so the loss pattern differs),
     but a batched campaign over a lossy link must still be deterministic
     and must survive to the end of its budget. *)
  let run () =
    let build = Osbuild.make ~board_profile:Eof_hw.Profiles.stm32f4_disco Zephyr.spec in
    let transport = Transport.create ~rng:(Eof_util.Rng.create 0xF1AA7L) () in
    let machine =
      match Eof_agent.Machine.create ~transport build with
      | Ok m -> m
      | Error e -> Alcotest.fail (Eof_util.Eof_error.to_string e)
    in
    (* Same loss rate as the tier-1 survival test above: a board
       re-flash is dozens of exchanges, so loss rates much past 1%
       compound into unrecoverable restore failures in either link
       mode — that regime is out of scope here. *)
    Transport.set_failure_mode transport (Transport.Flaky 0.01);
    let config =
      { Campaign.default_config with iterations = 100; seed = 5L; batch_link = true }
    in
    match Campaign.run ~machine config build with
    | Error e -> Alcotest.fail (Eof_util.Eof_error.to_string e)
    | Ok o ->
      ( o.Campaign.coverage,
        o.Campaign.crash_events,
        o.Campaign.executed_programs,
        Transport.timeouts transport,
        o.Campaign.iterations_done,
        Eof_util.Bitset.to_list o.Campaign.coverage_bitmap )
  in
  let (c1, ce1, ex1, to1, it1, bm1) = run () in
  let (c2, ce2, ex2, to2, it2, bm2) = run () in
  Alcotest.(check bool) "flaky batched run is deterministic" true
    ((c1, ce1, ex1, to1, it1) = (c2, ce2, ex2, to2, it2) && bm1 = bm2);
  Alcotest.(check int) "ran to budget" 100 it1;
  Alcotest.(check bool) "losses actually happened" true (to1 > 0);
  Alcotest.(check bool) "still found coverage" true (c1 > 0)

let suite =
  suite
  @ [
      Alcotest.test_case "batched equals unbatched" `Quick test_batched_equals_unbatched;
      Alcotest.test_case "batched flaky deterministic" `Quick
        test_batched_flaky_deterministic;
    ]

(* --- liveness stall streaks and restore edge cases --------------------- *)

module Obs = Eof_obs.Obs

let fresh_machine ?obs () =
  let build = Osbuild.make ~board_profile:Eof_hw.Profiles.stm32f4_disco Zephyr.spec in
  match Eof_agent.Machine.create ?obs build with
  | Ok m -> (build, m)
  | Error e -> Alcotest.fail (Eof_util.Eof_error.to_string e)

let test_stall_requires_streak () =
  (* The PC of a freshly connected target does not move between reads,
     so repeated checks walk the streak up deterministically. *)
  let _, machine = fresh_machine () in
  let wd = Liveness.create () in
  Alcotest.(check int) "default threshold" 3 (Liveness.stall_threshold wd);
  (match Liveness.check wd machine with
   | Liveness.First_observation -> ()
   | _ -> Alcotest.fail "first check arms the watchdog");
  (* Repeats below the threshold are Alive, not a stall. *)
  for i = 1 to 2 do
    match Liveness.check wd machine with
    | Liveness.Alive -> Alcotest.(check int) "streak grows" i (Liveness.stall_streak wd)
    | v ->
      Alcotest.fail
        (Printf.sprintf "repeat %d must stay alive (streak %d), got %s" i
           (Liveness.stall_streak wd)
           (match v with
            | Liveness.Pc_stalled _ -> "pc-stalled"
            | Liveness.Connection_lost -> "connection-lost"
            | Liveness.First_observation -> "first-observation"
            | Liveness.Alive -> "alive"))
  done;
  (* The third consecutive repeat crosses the default threshold. *)
  (match Liveness.check wd machine with
   | Liveness.Pc_stalled _ -> ()
   | _ -> Alcotest.fail "threshold-th repeat must declare a stall")

let test_stall_streak_resets_on_progress () =
  let _, machine = fresh_machine () in
  let session = Eof_agent.Machine.session machine in
  let wd = Liveness.create () in
  ignore (Liveness.check wd machine);
  ignore (Liveness.check wd machine);
  ignore (Liveness.check wd machine);
  Alcotest.(check int) "two repeats banked" 2 (Liveness.stall_streak wd);
  (* Any PC movement wipes the streak: step the target forward. *)
  (match Eof_debug.Session.step session with
   | Ok _ -> ()
   | Error e -> Alcotest.fail (Eof_debug.Session.error_to_string e));
  (match Liveness.check wd machine with
   | Liveness.Alive -> ()
   | _ -> Alcotest.fail "new PC must be alive");
  Alcotest.(check int) "streak cleared" 0 (Liveness.stall_streak wd);
  (* And the stall needs a full fresh streak again. *)
  (match Liveness.check wd machine with
   | Liveness.Alive -> ()
   | _ -> Alcotest.fail "single repeat after progress is not a stall");
  (* reset clears even the armed LastPC. *)
  Liveness.reset wd;
  (match Liveness.check wd machine with
   | Liveness.First_observation -> ()
   | _ -> Alcotest.fail "reset must disarm the watchdog")

let test_stall_threshold_one_and_validation () =
  (* threshold 1 reproduces the old single-repeat behaviour. *)
  let _, machine = fresh_machine () in
  let wd = Liveness.create ~stall_threshold:1 () in
  ignore (Liveness.check wd machine);
  (match Liveness.check wd machine with
   | Liveness.Pc_stalled _ -> ()
   | _ -> Alcotest.fail "threshold 1 must stall on the first repeat");
  match Liveness.create ~stall_threshold:0 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "threshold 0 must be rejected"

let flash_ops events =
  List.filter_map
    (function
      | _, _, Obs.Event.Flash_op { op; addr; len } -> Some (op, addr, len)
      | _ -> None)
    events

let test_restore_partitions_odd_final_chunk () =
  let bus = Obs.create () in
  let sink, events = Obs.memory_sink () in
  Obs.add_sink bus sink;
  let build, machine = fresh_machine ~obs:bus () in
  let flash_base =
    (Eof_hw.Board.profile (Osbuild.board build)).Eof_hw.Board.flash_base
  in
  (* A 3000-byte blob crosses one full 2048-byte packet and leaves an
     odd 952-byte tail. *)
  let table = [ { Eof_hw.Partition.name = "odd"; offset = 0; size = 4096 } ] in
  let image = Eof_hw.Image.build_exn ~table ~blobs:[ ("odd", String.make 3000 'k') ] in
  (match Liveness.restore_partitions machine ~flash_base ~image ~table with
   | Ok n -> Alcotest.(check int) "one partition" 1 n
   | Error e -> Alcotest.fail (Liveness.error_to_string e));
  let writes =
    List.filter_map
      (fun (op, addr, len) -> if op = "write" then Some (addr, len) else None)
      (flash_ops (events ()))
  in
  (match writes with
   | [ (a1, 2048); (a2, 952) ] ->
     Alcotest.(check int) "first chunk at base" flash_base a1;
     Alcotest.(check int) "tail follows" (flash_base + 2048) a2
   | ws ->
     Alcotest.fail
       (Printf.sprintf "expected 2048+952 writes, got [%s]"
          (String.concat "; "
             (List.map (fun (a, l) -> Printf.sprintf "0x%x:%d" a l) ws))));
  (* One Reflash_partition event carrying the blob size. *)
  match
    List.filter_map
      (function
        | _, _, Obs.Event.Reflash_partition { partition; bytes } -> Some (partition, bytes)
        | _ -> None)
      (events ())
  with
  | [ ("odd", 3000) ] -> ()
  | _ -> Alcotest.fail "expected one reflash event for 'odd' (3000 bytes)"

let test_restore_partitions_missing_blob () =
  let build, machine = fresh_machine () in
  let flash_base =
    (Eof_hw.Board.profile (Osbuild.board build)).Eof_hw.Board.flash_base
  in
  let table = [ { Eof_hw.Partition.name = "present"; offset = 0; size = 2048 } ] in
  let image =
    Eof_hw.Image.build_exn ~table ~blobs:[ ("present", String.make 100 'p') ]
  in
  (* The table handed to restore names a partition the image has no blob
     for — the typed error must say which one. *)
  let ghost = { Eof_hw.Partition.name = "ghost"; offset = 2048; size = 2048 } in
  match Liveness.restore_partitions machine ~flash_base ~image ~table:(table @ [ ghost ]) with
  | Error { Eof_util.Eof_error.kind = Missing_blob "ghost"; _ } -> ()
  | Error e -> Alcotest.fail ("wrong error: " ^ Liveness.error_to_string e)
  | Ok _ -> Alcotest.fail "missing blob must fail"

let test_restore_emits_reflash_events () =
  let bus = Obs.create () in
  let sink, events = Obs.memory_sink () in
  Obs.add_sink bus sink;
  let build, machine = fresh_machine ~obs:bus () in
  let board = Osbuild.board build in
  Eof_hw.Flash.corrupt (Eof_hw.Board.flash board)
    ~addr:(Eof_hw.Flash.base (Eof_hw.Board.flash board) + 0x5000)
    "XX";
  (match Liveness.restore machine ~build with
   | Ok 3 -> ()
   | Ok n -> Alcotest.fail (Printf.sprintf "expected 3 partitions, got %d" n)
   | Error e -> Alcotest.fail (Liveness.error_to_string e));
  Alcotest.(check bool) "boots" true (Eof_hw.Board.boot_ok board);
  let evs = events () in
  let reflashes =
    List.filter_map
      (function
        | _, _, Obs.Event.Reflash_partition { partition; _ } -> Some partition
        | _ -> None)
      evs
  in
  Alcotest.(check int) "one event per partition" 3 (List.length reflashes);
  let expected =
    List.map (fun (e : Eof_hw.Partition.entry) -> e.Eof_hw.Partition.name)
      (Osbuild.image build).Eof_hw.Image.table
  in
  Alcotest.(check bool) "partition names in table order" true (reflashes = expected);
  (match
     List.find_opt
       (function _, _, Obs.Event.Restore_done _ -> true | _ -> false)
       evs
   with
   | Some (_, _, Obs.Event.Restore_done { partitions = 3 }) -> ()
   | _ -> Alcotest.fail "expected a Restore_done{partitions=3} event");
  (* The reset that follows the reflash is also on the trace. *)
  Alcotest.(check bool) "reset event present" true
    (List.exists (function _, _, Obs.Event.Reset_board -> true | _ -> false) evs)

let test_campaign_obs_does_not_perturb () =
  let build = Osbuild.make ~board_profile:Eof_hw.Profiles.stm32f4_disco Zephyr.spec in
  let config = { Campaign.default_config with iterations = 80; seed = 7L } in
  let fingerprint (o : Campaign.outcome) =
    ( o.Campaign.coverage,
      o.Campaign.crash_events,
      o.Campaign.executed_programs,
      o.Campaign.iterations_done,
      o.Campaign.corpus_size,
      Eof_util.Bitset.to_list o.Campaign.coverage_bitmap )
  in
  let bare =
    match Campaign.run config build with Ok o -> fingerprint o | Error e -> Alcotest.fail (Eof_util.Eof_error.to_string e)
  in
  (* A sinkless bus must not change a single outcome field... *)
  let null_sink =
    match Campaign.run ~obs:(Obs.create ()) config build with
    | Ok o -> fingerprint o
    | Error e -> Alcotest.fail (Eof_util.Eof_error.to_string e)
  in
  Alcotest.(check bool) "null-sink outcome identical" true (bare = null_sink);
  (* ...and neither must full event capture: observation is a reporting
     plane, not a data plane. *)
  let bus = Obs.create () in
  let sink, events = Obs.memory_sink () in
  Obs.add_sink bus sink;
  let observed =
    match Campaign.run ~obs:bus config build with
    | Ok o -> fingerprint o
    | Error e -> Alcotest.fail (Eof_util.Eof_error.to_string e)
  in
  Alcotest.(check bool) "observed outcome identical" true (bare = observed);
  Alcotest.(check bool) "events actually captured" true (List.length (events ()) > 0);
  Alcotest.(check int) "payload counter matches" 80
    (Obs.counter_value bus "campaign.payloads")

let suite =
  suite
  @ [
      Alcotest.test_case "stall requires a streak" `Quick test_stall_requires_streak;
      Alcotest.test_case "stall streak resets on progress" `Quick
        test_stall_streak_resets_on_progress;
      Alcotest.test_case "stall threshold one (and validation)" `Quick
        test_stall_threshold_one_and_validation;
      Alcotest.test_case "restore odd final chunk" `Quick
        test_restore_partitions_odd_final_chunk;
      Alcotest.test_case "restore missing blob" `Quick test_restore_partitions_missing_blob;
      Alcotest.test_case "restore emits reflash events" `Quick
        test_restore_emits_reflash_events;
      Alcotest.test_case "obs does not perturb campaign" `Quick
        test_campaign_obs_does_not_perturb;
    ]

(* --- corpus scheduling, transplantation, compiled generators --------- *)

let freertos_env =
  lazy
    (let build =
       Osbuild.make ~board_profile:Eof_hw.Profiles.stm32f4_disco Freertos.spec
     in
     let table = Osbuild.api_signatures build in
     let spec =
       match Eof_spec.Synth.validated_of_api table with
       | Ok s -> s
       | Error e -> failwith e
     in
     (build, table, spec))

let zephyr_target () =
  let build, table, _ = Lazy.force zephyr_env in
  Corpus.target_of ~os:(Osbuild.os_name build) ~table

let seed_progs n seed =
  let gen = make_gen seed in
  List.init n (fun _ -> Gen.generate gen ~max_len:8)

let test_energy_schedule_budgets () =
  let target = zephyr_target () in
  let corpus =
    Corpus.create ~rng:(Eof_util.Rng.create 41L) ~schedule:Corpus.Energy ~target ()
  in
  (* A rare find (1-4 new edges) lands on the frontier; a broad find
     does not. *)
  let rare, broad =
    match seed_progs 2 41L with
    | [ a; b ] -> (a, b)
    | _ -> Alcotest.fail "expected two seeds"
  in
  Alcotest.(check bool) "rare admitted" true
    (Corpus.add corpus ~target ~prog:rare ~new_edges:2 ~crashed:false);
  Alcotest.(check bool) "broad admitted" true
    (Corpus.add corpus ~target ~prog:broad ~new_edges:32 ~crashed:false);
  Alcotest.(check bool) "rare find on frontier" true
    (Corpus.on_frontier corpus ~target rare);
  Alcotest.(check bool) "broad find off frontier" true
    (not (Corpus.on_frontier corpus ~target broad));
  Alcotest.(check int) "frontier holds one" 1 (Corpus.frontier_size corpus ~target);
  (* First pick of a frontier seed maxes the bonus: frontier(2) +
     first-pick(1) + broad-or-crash(1 for the broad seed only). Energy
     is always a power of two in [1;16]. *)
  for _ = 1 to 50 do
    match Corpus.next corpus ~target with
    | None -> Alcotest.fail "non-empty corpus must schedule"
    | Some (p, energy) ->
      Alcotest.(check bool) "energy is a power of two in [1;16]" true
        (List.mem energy [ 1; 2; 4; 8; 16 ]);
      if Corpus.on_frontier corpus ~target p then
        Alcotest.(check bool) "frontier seed earns >= 4x" true (energy >= 4)
  done

let test_uniform_schedule_is_flat () =
  let target = zephyr_target () in
  let corpus = Corpus.create ~rng:(Eof_util.Rng.create 42L) ~target () in
  List.iter
    (fun p -> ignore (Corpus.add corpus ~target ~prog:p ~new_edges:2 ~crashed:true))
    (seed_progs 6 42L);
  for _ = 1 to 40 do
    match Corpus.next corpus ~target with
    | Some (_, 1) -> ()
    | Some (_, e) -> Alcotest.fail (Printf.sprintf "uniform energy %d, want 1" e)
    | None -> Alcotest.fail "non-empty corpus must schedule"
  done

let test_merge_preserves_schedule_state () =
  let target = zephyr_target () in
  let mk seed =
    Corpus.create ~rng:(Eof_util.Rng.create seed) ~schedule:Corpus.Energy ~target ()
  in
  let src = mk 7L and dst = mk 8L in
  let progs = seed_progs 5 7L in
  List.iteri
    (fun i p ->
      ignore (Corpus.add src ~target ~prog:p ~new_edges:(if i < 2 then 3 else 40) ~crashed:false))
    progs;
  (* Age one seed so its pick count is part of the transferred state. *)
  ignore (Corpus.next src ~target);
  let imported = Corpus.merge dst src in
  Alcotest.(check int) "all seeds imported" 5 imported;
  Alcotest.(check int) "frontier travels with the seeds"
    (Corpus.frontier_size src ~target)
    (Corpus.frontier_size dst ~target);
  List.iteri
    (fun i p ->
      Alcotest.(check bool)
        (Printf.sprintf "seed %d frontier membership preserved" i)
        (Corpus.on_frontier src ~target p)
        (Corpus.on_frontier dst ~target p))
    progs;
  (* Re-merge is a no-op: content hashes dedup. *)
  Alcotest.(check int) "re-merge imports nothing" 0 (Corpus.merge dst src)

let retype_to_freertos prog =
  let _, ftable, fspec = Lazy.force freertos_env in
  Eof_core.Transplant.retype ~dst_spec:fspec ~dst_table:ftable prog

let retype_to_zephyr prog =
  let _, ztable, zspec = Lazy.force zephyr_env in
  Eof_core.Transplant.retype ~dst_spec:zspec ~dst_table:ztable prog

let test_transplant_validate_clean () =
  (* Every successful retype must produce a validate-clean program whose
     kept+dropped accounts for every source call. *)
  let progs = seed_progs 60 11L in
  let succeeded = ref 0 in
  List.iter
    (fun p ->
      match retype_to_freertos p with
      | None -> ()
      | Some o ->
        incr succeeded;
        Alcotest.(check int) "kept + dropped = source length" (Prog.length p)
          (o.Eof_core.Transplant.kept + o.Eof_core.Transplant.dropped);
        Alcotest.(check int) "kept = result length" o.Eof_core.Transplant.kept
          (Prog.length o.Eof_core.Transplant.prog);
        (match Prog.validate o.Eof_core.Transplant.prog with
         | Ok () -> ()
         | Error e ->
           Alcotest.fail
             ("transplant not validate-clean: " ^ e ^ "\n"
             ^ Prog.to_string o.Eof_core.Transplant.prog)))
    progs;
  Alcotest.(check bool) "transplantation finds mappings" true (!succeeded > 0)

let test_transplant_drops_unmappable () =
  (* Against an empty destination table nothing can map. *)
  let _, ztable, zspec = Lazy.force zephyr_env in
  let empty_spec = { zspec with Eof_spec.Ast.calls = [] } in
  let empty_table = { ztable with Eof_rtos.Api.entries = [] } in
  List.iter
    (fun p ->
      match
        Eof_core.Transplant.retype ~dst_spec:empty_spec ~dst_table:empty_table p
      with
      | None -> ()
      | Some _ -> Alcotest.fail "empty destination table must reject everything")
    (seed_progs 10 12L)

let test_transplant_roundtrip_stable () =
  (* FreeRTOS -> Zephyr -> FreeRTOS: after the first crossing the
     program lives in the shared signature subspace, so round-trips
     drop nothing and keep the call structure; scalars may narrow once
     (into the intersection of the two ranges), after which a second
     full round-trip is byte-identical. *)
  let structure prog =
    List.map
      (fun (c : Prog.call) ->
        ( c.Prog.api_index,
          List.map (function Prog.Res r -> Some r | _ -> None) c.Prog.args ))
      prog
  in
  let progs = seed_progs 40 13L in
  let crossed = ref 0 in
  List.iter
    (fun p ->
      match retype_to_freertos p with
      | None -> ()
      | Some o1 ->
        (match retype_to_zephyr o1.Eof_core.Transplant.prog with
         | None -> Alcotest.fail "mapped program must map back"
         | Some o2 ->
           Alcotest.(check int) "no drops on the way back" 0
             o2.Eof_core.Transplant.dropped;
           (match retype_to_freertos o2.Eof_core.Transplant.prog with
            | None -> Alcotest.fail "round-trip must keep mapping"
            | Some o3 ->
              incr crossed;
              Alcotest.(check int) "round-trip drops nothing" 0
                o3.Eof_core.Transplant.dropped;
              Alcotest.(check bool) "call structure stable after first crossing"
                true
                (structure o3.Eof_core.Transplant.prog
                = structure o1.Eof_core.Transplant.prog);
              (* Second full round trip: scalars have settled. *)
              (match retype_to_zephyr o3.Eof_core.Transplant.prog with
               | None -> Alcotest.fail "second round-trip must keep mapping"
               | Some o4 ->
                 (match retype_to_freertos o4.Eof_core.Transplant.prog with
                  | None -> Alcotest.fail "second round-trip must keep mapping"
                  | Some o5 ->
                    Alcotest.(check int) "second round-trip drops nothing" 0
                      (o4.Eof_core.Transplant.dropped
                      + o5.Eof_core.Transplant.dropped);
                    Alcotest.(check bool) "second round-trip is byte-stable" true
                      (Prog.hash o5.Eof_core.Transplant.prog
                      = Prog.hash o3.Eof_core.Transplant.prog))))))
    progs;
  Alcotest.(check bool) "round trips exercised" true (!crossed > 0)

let test_transplant_deterministic () =
  (* retype takes no RNG; byte-for-byte equal outcomes across calls. *)
  List.iter
    (fun p ->
      let enc o =
        match
          Eof_agent.Wire.encode ~endianness:Eof_hw.Arch.Little
            (Prog.to_wire o.Eof_core.Transplant.prog)
        with
        | Ok s -> (s, o.Eof_core.Transplant.kept, o.Eof_core.Transplant.dropped)
        | Error e -> Alcotest.fail ("wire: " ^ e)
      in
      match (retype_to_freertos p, retype_to_freertos p) with
      | None, None -> ()
      | Some a, Some b ->
        Alcotest.(check bool) "identical outcome" true (enc a = enc b)
      | _ -> Alcotest.fail "retype nondeterministic accept/reject")
    (seed_progs 30 14L)

let test_compiled_equals_interp () =
  (* The compiled generator pre-resolves candidate sets but must draw
     from the RNG identically: same seed, byte-identical program
     streams, generation and mutation both. *)
  let _, table, spec = Lazy.force zephyr_env in
  let stream mode seed =
    let gen =
      Gen.create ~dep_aware:true ~mode ~rng:(Eof_util.Rng.create seed) ~spec ~table ()
    in
    let progs = List.init 40 (fun i -> Gen.generate gen ~max_len:(2 + (i mod 10))) in
    let mutated =
      List.map (fun p -> Gen.mutate gen p ~max_len:12) progs
    in
    List.map
      (fun p ->
        match Eof_agent.Wire.encode ~endianness:Eof_hw.Arch.Little (Prog.to_wire p) with
        | Ok s -> s
        | Error e -> Alcotest.fail ("wire: " ^ e))
      (progs @ mutated)
  in
  List.iter
    (fun seed ->
      let i = stream Gen.Interp seed and c = stream Gen.Compiled seed in
      Alcotest.(check bool)
        (Printf.sprintf "seed %Ld streams byte-identical" seed)
        true (i = c))
    [ 1L; 2L; 3L; 17L; 99L; 12345L ]

let test_energy_campaign_deterministic () =
  let build, _, _ = Lazy.force zephyr_env in
  let run () =
    let config =
      {
        Campaign.default_config with
        iterations = 150;
        seed = 21L;
        schedule = Corpus.Energy;
        gen_mode = Gen.Compiled;
      }
    in
    match Campaign.run config build with
    | Error e -> Alcotest.fail (Eof_util.Eof_error.to_string e)
    | Ok o ->
      ( o.Campaign.coverage,
        o.Campaign.crash_events,
        o.Campaign.executed_programs,
        o.Campaign.corpus_size,
        Eof_util.Bitset.to_list o.Campaign.coverage_bitmap )
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "energy+compiled campaign deterministic" true (a = b);
  let cov, _, ex, _, _ = a in
  Alcotest.(check int) "ran the full budget" 150 ex;
  Alcotest.(check bool) "found coverage" true (cov > 0)

let suite =
  suite
  @ [
      Alcotest.test_case "energy schedule budgets" `Quick test_energy_schedule_budgets;
      Alcotest.test_case "uniform schedule is flat" `Quick test_uniform_schedule_is_flat;
      Alcotest.test_case "merge preserves schedule state" `Quick
        test_merge_preserves_schedule_state;
      Alcotest.test_case "transplant validate-clean" `Quick test_transplant_validate_clean;
      Alcotest.test_case "transplant drops unmappable" `Quick
        test_transplant_drops_unmappable;
      Alcotest.test_case "transplant round-trip stable" `Quick
        test_transplant_roundtrip_stable;
      Alcotest.test_case "transplant deterministic" `Quick test_transplant_deterministic;
      Alcotest.test_case "compiled equals interp" `Quick test_compiled_equals_interp;
      Alcotest.test_case "energy campaign deterministic" `Quick
        test_energy_campaign_deterministic;
    ]
