let () =
  Alcotest.run "eof"
    [
      ("util", Test_util.suite);
      ("obs", Test_obs.suite);
      ("hw", Test_hw.suite);
      ("exec", Test_exec.suite);
      ("debug", Test_debug.suite);
      ("rtos", Test_rtos.suite);
      ("apps", Test_apps.suite);
      ("spec", Test_spec.suite);
      ("agent", Test_agent.suite);
      ("core", Test_core.suite);
      ("backend", Test_backend.suite);
      ("farm", Test_farm.suite);
      ("resilience", Test_resilience.suite);
      ("baselines", Test_baselines.suite);
      ("expt", Test_expt.suite);
      ("hub", Test_hub.suite);
      ("bugs", Test_bugs.suite);
    ]
