(* A miniature head-to-head: EOF vs its no-feedback ablation vs the
   Tardis baseline on Zephyr, same payload budget, one seed.

   Run with:  dune exec examples/compare_fuzzers.exe *)

module Campaign = Eof_core.Campaign
module Runner = Eof_expt.Runner
module Targets = Eof_expt.Targets

let () =
  let iterations = 1200 in
  let target = Option.get (Targets.find "Zephyr") in
  Printf.printf "Zephyr, %d payloads each, seed 11:\n\n" iterations;
  List.iter
    (fun tool ->
      match Runner.run_tool tool ~seed:11L ~iterations target with
      | Error e ->
        Printf.printf "%-8s failed: %s\n" (Runner.tool_name tool)
          (Eof_util.Eof_error.to_string e)
      | Ok o ->
        let bugs = Targets.found_ids o.Campaign.crashes in
        Printf.printf "%-8s %4d branches, %d resets, bugs {%s}\n"
          (Runner.tool_name tool) o.Campaign.coverage o.Campaign.resets
          (String.concat "," (List.map string_of_int bugs)))
    [ Runner.EOF; Runner.EOF_nf; Runner.Tardis ]
