(* Liveness management demo (Algorithm 1): corrupt the flash image,
   watch the PC-stall watchdog detect the failed boot, and restore the
   system by reflashing every partition over the debug link.

   Run with:  dune exec examples/liveness_recovery.exe *)

open Eof_hw
open Eof_os
open Eof_agent
module Session = Eof_debug.Session
module Liveness = Eof_core.Liveness

let ok = function
  | Ok v -> v
  | Error e ->
    prerr_endline ("debug session error: " ^ Session.error_to_string e);
    exit 1

let () =
  let build = Osbuild.make ~board_profile:Profiles.esp32_devkitc Freertos.spec in
  let machine =
    match Machine.create build with
    | Ok m -> m
    | Error e -> failwith (Eof_util.Eof_error.to_string e)
  in
  let session = Machine.session machine in
  let syms = Osbuild.syms build in
  let board = Osbuild.board build in
  ok (Session.set_breakpoint session syms.Osbuild.sym_executor_main);

  (* Healthy boot first. *)
  (match ok (Session.continue_ session) with
   | Session.Stopped_breakpoint _ -> print_endline "1. target booted, agent waiting"
   | _ -> failwith "no boot");
  print_string (ok (Session.drain_uart session));

  (* A buggy test case scribbles the kernel partition in flash (we do it
     directly here; bug #13-style behaviour would do it from inside). *)
  let kernel = Option.get (Partition.find (Board.partition_table board) "kernel") in
  Flash.corrupt (Board.flash board)
    ~addr:(Flash.base (Board.flash board) + kernel.Partition.offset + 0x1000)
    "!! flash corruption from a runaway kernel write !!";
  print_endline "2. kernel partition scribbled in flash; rebooting";
  ok (Session.reset_target session);

  (* Algorithm 1, watchdog side: exec-continue fails to move the PC. *)
  let watchdog = Liveness.create () in
  (match ok (Session.continue_ session) with
   | Session.Stopped_quantum pc ->
     Printf.printf "3. continue stopped at 0x%08x (no agent breakpoint: suspicious)\n" pc
   | _ -> failwith "expected a quantum stop");
  (match Liveness.check watchdog machine with
   | Liveness.First_observation -> print_endline "4. watchdog armed (LastPC recorded)"
   | _ -> failwith "expected first observation");
  (* The watchdog only declares a stall after the PC repeats on
     [stall_threshold] consecutive checks — a single repeat is routine
     (polling loops, breakpoint parking) and must not trigger a
     reflash. *)
  let rec wait_for_stall repeats =
    (match ok (Session.continue_ session) with
     | Session.Stopped_quantum _ -> ()
     | _ -> failwith "expected another quantum stop");
    match Liveness.check watchdog machine with
    | Liveness.Pc_stalled pc ->
      Printf.printf
        "5. PC stalled at 0x%08x after %d repeated samples -> unrecoverable state\n"
        pc repeats
    | Liveness.Alive -> wait_for_stall (repeats + 1)
    | _ -> failwith "unexpected watchdog verdict"
  in
  wait_for_stall 1;
  print_string (ok (Session.drain_uart session));

  (* Algorithm 1, restoration side: reflash every partition, reboot. *)
  (match Liveness.restore machine ~build with
   | Ok n -> Printf.printf "6. reflashed %d partitions from the golden image\n" n
   | Error e -> failwith (Liveness.error_to_string e));
  (match ok (Session.continue_ session) with
   | Session.Stopped_breakpoint _ ->
     print_endline "7. target booted again; fuzzing resumes without manual intervention"
   | _ -> failwith "restore failed");
  Printf.printf "\nBoard stats: %d power cycles, %d flash sector erases\n"
    (Board.power_cycles board)
    (Flash.erase_count (Board.flash board))
