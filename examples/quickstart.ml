(* Quickstart: fuzz one embedded OS on a simulated board for a few
   hundred iterations and print what EOF found.

   Run with:  dune exec examples/quickstart.exe *)

open Eof_os
module Campaign = Eof_core.Campaign
module Crash = Eof_core.Crash

let () =
  (* 1. Build the target: the Zephyr personality flashed onto a
     simulated STM32F4 Discovery board, fully instrumented. *)
  let build = Osbuild.make ~board_profile:Eof_hw.Profiles.stm32f4_disco Zephyr.spec in
  Printf.printf "Target: %s %s on %s (image %d KiB, %d potential edges)\n%!"
    (Osbuild.os_name build) (Osbuild.version build)
    (Eof_hw.Board.profile (Osbuild.board build)).Eof_hw.Board.name
    (Osbuild.image_bytes build / 1024)
    (Osbuild.edge_capacity build);

  (* 2. Fuzz it. The campaign attaches over the simulated SWD link,
     deploys breakpoints on the agent's binding points, and runs the
     feedback-guided loop. *)
  let config = { Campaign.default_config with iterations = 300; seed = 42L } in
  match Campaign.run config build with
  | Error e ->
    prerr_endline ("campaign failed: " ^ Eof_util.Eof_error.to_string e);
    exit 1
  | Ok outcome ->
    Printf.printf "\nExecuted %d programs in %.2f virtual seconds (%d resets, %d reflashes)\n"
      outcome.Campaign.executed_programs outcome.Campaign.virtual_s outcome.Campaign.resets
      outcome.Campaign.reflashes;
    Printf.printf "Branch coverage: %d distinct edges; corpus holds %d seeds\n"
      outcome.Campaign.coverage outcome.Campaign.corpus_size;
    Printf.printf "\nBugs found (%d distinct, %d total crash events):\n"
      (List.length outcome.Campaign.crashes)
      outcome.Campaign.crash_events;
    List.iter
      (fun crash -> Printf.printf "  %s\n" (Crash.summary crash))
      outcome.Campaign.crashes;
    Printf.printf "\nCoverage growth:\n";
    List.iter
      (fun s ->
        Printf.printf "  iter %4d  %6.2fs  %5d edges\n" s.Campaign.iteration
          s.Campaign.virtual_s s.Campaign.coverage)
      (List.filteri (fun i _ -> i mod 5 = 0) outcome.Campaign.series)
