(* Crash triage: take a bloated crashing program (as a fuzzing campaign
   would save it), re-execute candidates on the live target over the
   debug link, and minimize it to the smallest reproducer — the kind of
   program a bug report (like the paper's Figure 6) actually shows.

   Run with:  dune exec examples/minimize_crash.exe *)

open Eof_hw
open Eof_os
open Eof_agent
module Session = Eof_debug.Session
module Prog = Eof_core.Prog
module Minimize = Eof_core.Minimize

let ok = function
  | Ok v -> v
  | Error e ->
    prerr_endline (Session.error_to_string e);
    exit 1

let () =
  let build = Osbuild.make ~board_profile:Profiles.stm32f4_disco Zephyr.spec in
  let machine =
    match Machine.create build with
    | Ok m -> m
    | Error e -> failwith (Eof_util.Eof_error.to_string e)
  in
  let session = Machine.session machine in
  let syms = Osbuild.syms build in
  let table = Osbuild.api_signatures build in
  let spec =
    match Eof_spec.Synth.validated_of_api table with Ok s -> s | Error e -> failwith e
  in
  List.iter
    (fun a -> ok (Session.set_breakpoint session a))
    [ syms.Osbuild.sym_executor_main; syms.Osbuild.sym_loop_back;
      syms.Osbuild.sym_handle_exception ];

  let call name args =
    let rec index i = function
      | [] -> failwith name
      | (e : Eof_rtos.Api.entry) :: _ when e.Eof_rtos.Api.name = name -> i
      | _ :: rest -> index (i + 1) rest
    in
    let spec_call =
      List.find (fun (c : Eof_spec.Ast.call) -> c.Eof_spec.Ast.name = name)
        spec.Eof_spec.Ast.calls
    in
    { Prog.spec = spec_call; api_index = index 0 table.Eof_rtos.Api.entries; args }
  in

  (* Execute one candidate on the target and classify the outcome by the
     panic message, which is the minimizer's crash signature. *)
  let exec prog =
    let rec to_executor n =
      if n = 0 then failwith "no executor_main";
      match ok (Session.continue_ session) with
      | Session.Stopped_breakpoint pc when pc = syms.Osbuild.sym_executor_main -> ()
      | _ -> to_executor (n - 1)
    in
    to_executor 10;
    let payload =
      match Wire.encode ~endianness:Arch.Little (Prog.to_wire prog) with
      | Ok s -> s
      | Error e -> failwith e
    in
    let header = Bytes.create 8 in
    Bytes.set_int32_le header 0 Wire.magic;
    Bytes.set_int32_le header 4 (Int32.of_int (String.length payload));
    ok
      (Session.write_mem session ~addr:(Osbuild.mailbox_base build)
         (Bytes.to_string header ^ payload));
    let rec drive n =
      if n = 0 then Minimize.No_crash
      else
        match ok (Session.continue_ session) with
        | Session.Stopped_breakpoint pc when pc = syms.Osbuild.sym_loop_back ->
          ignore (Session.drain_uart session : (string, Session.error) result);
          Minimize.No_crash
        | Session.Stopped_breakpoint pc when pc = syms.Osbuild.sym_handle_exception ->
          let log = ok (Session.drain_uart session) in
          ignore (Session.continue_ session : (Session.stop, Session.error) result);
          ok (Session.reset_target session);
          let detections = Eof_core.Monitor.scan log in
          (match Eof_core.Monitor.first_panic detections with
           | Some (_, message) -> Minimize.Crash message
           | None -> Minimize.Crash "unclassified panic")
        | Session.Stopped_fault _ ->
          ok (Session.reset_target session);
          Minimize.Crash "hardware fault"
        | _ -> drive (n - 1)
    in
    drive 50
  in

  (* The bloated reproducer: the real 4-call chain of bug #2 buried in
     unrelated calls, with an oversized payload argument. *)
  let bloated =
    [
      call "k_sem_init" [ Prog.Int 1L; Prog.Int 5L ];
      call "k_msgq_create" [ Prog.Int 8L; Prog.Int 32L ];
      call "printk" [ Prog.Str "starting up" ];
      call "k_msgq_put" [ Prog.Res 1; Prog.Str (String.make 64 'A') ];
      call "k_sem_take" [ Prog.Res 0 ];
      call "k_msgq_purge" [ Prog.Res 1 ];
      call "k_event_create" [];
      call "z_impl_k_msgq_get" [ Prog.Res 1 ];
      call "k_yield" [];
    ]
  in
  print_endline "Bloated crashing program (9 calls):";
  print_endline (Prog.to_string bloated);

  let signature =
    match exec bloated with
    | Minimize.Crash s -> s
    | Minimize.No_crash -> failwith "expected a crash"
  in
  Printf.printf "\ncrash signature: %s\n\n" signature;

  let reduced, execs = Minimize.minimize ~exec ~signature bloated in
  Printf.printf "Minimized to %d calls after %d candidate executions:\n"
    (Prog.length reduced) execs;
  print_endline (Prog.to_string reduced);
  match exec reduced with
  | Minimize.Crash s when s = signature -> print_endline "\nreduced program still crashes."
  | _ -> failwith "reduction lost the crash"
