(* The paper's §5.3.1 case study, reproduced end to end: a perfectly
   valid socket() call panics RT-Thread because the console serial
   device is stale, and EOF captures the backtrace over the debug link.

   Run with:  dune exec examples/bug_hunt_rtthread.exe *)

open Eof_hw
open Eof_os
open Eof_agent
module Session = Eof_debug.Session

let ok = function
  | Ok v -> v
  | Error e ->
    prerr_endline ("debug session error: " ^ Session.error_to_string e);
    exit 1

let api_index table name =
  let rec go i = function
    | [] -> failwith ("no api " ^ name)
    | (e : Eof_rtos.Api.entry) :: _ when e.Eof_rtos.Api.name = name -> i
    | _ :: rest -> go (i + 1) rest
  in
  go 0 table.Eof_rtos.Api.entries

let () =
  let build = Osbuild.make ~board_profile:Profiles.stm32f4_disco Rtthread.spec in
  let machine =
    match Machine.create build with
    | Ok m -> m
    | Error e -> failwith (Eof_util.Eof_error.to_string e)
  in
  let session = Machine.session machine in
  let syms = Osbuild.syms build in
  let table = Osbuild.api_signatures build in

  (* Arm the agent binding points plus the exception monitor. *)
  List.iter
    (fun a -> ok (Session.set_breakpoint session a))
    [ syms.Osbuild.sym_executor_main; syms.Osbuild.sym_loop_back;
      syms.Osbuild.sym_handle_exception ];

  (* The trigger: detach the console serial device, then create a
     socket. socket() logs its success through the (now stale) console
     — Figure 6's call chain. *)
  let prog =
    [
      { Wire.api_index = api_index table "rt_serial_ctrl";
        args = [ Wire.W_int 1L (* detach *) ] };
      { Wire.api_index = api_index table "syz_create_bind_socket";
        args = [ Wire.W_int 0xbc78L; Wire.W_int 0x0L; Wire.W_int 0x101L; Wire.W_int 0x0L ] };
    ]
  in
  Printf.printf "Delivering the Figure-6 program to RT-Thread on %s:\n\n"
    (Board.profile (Osbuild.board build)).Board.name;
  Printf.printf "  rt_serial_ctrl(RT_DEVICE_CTRL_DETACH)\n";
  Printf.printf "  syz_create_bind_socket(0xbc78, 0x0, 0x101, 0x0)\n\n";

  (* Drive to executor_main, write the program, continue. *)
  (match ok (Session.continue_ session) with
   | Session.Stopped_breakpoint pc when pc = syms.Osbuild.sym_executor_main -> ()
   | _ -> failwith "target did not reach executor_main");
  let endianness = (Board.profile (Osbuild.board build)).Board.arch.Arch.endianness in
  let payload =
    match Wire.encode ~endianness prog with Ok s -> s | Error e -> failwith e
  in
  let header = Bytes.create 8 in
  Bytes.set_int32_le header 0 Wire.magic;
  Bytes.set_int32_le header 4 (Int32.of_int (String.length payload));
  ok
    (Session.write_mem session ~addr:(Osbuild.mailbox_base build)
       (Bytes.to_string header ^ payload));

  (match ok (Session.continue_ session) with
   | Session.Stopped_breakpoint pc when pc = syms.Osbuild.sym_handle_exception ->
     Printf.printf "Exception monitor: breakpoint at the panic handler hit.\n\n"
   | _ -> failwith "expected the panic-handler breakpoint");

  (* Collect the crash report from the UART, as the log monitor does. *)
  let log = ok (Session.drain_uart session) in
  print_string "--- target UART output ------------------------------------\n";
  print_string log;
  print_string "------------------------------------------------------------\n\n";

  (* Let the fault unwind, read the fault register, recover. *)
  (match ok (Session.continue_ session) with
   | Session.Stopped_fault _ -> ()
   | _ -> failwith "expected fault");
  Printf.printf "Fault register: %s\n" (ok (Session.last_fault session));
  ok (Session.reset_target session);
  (match ok (Session.continue_ session) with
   | Session.Stopped_breakpoint pc when pc = syms.Osbuild.sym_executor_main ->
     Printf.printf "Target rebooted cleanly; fuzzing could continue.\n"
   | _ -> failwith "target did not come back")
